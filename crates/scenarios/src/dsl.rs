//! Declarative scenario DSL: `.scn` files.
//!
//! A `.scn` file is a TOML-subset document describing a traffic world —
//! road geometry (or one of the builtin highway maps), scripted NPC
//! vehicles with phase plans (cut-in, cut-out, stop-and-go, merges),
//! per-segment friction bands, and the adversarial road-patch placement.
//! Files compile into the same [`ScenarioSetup`] the hard-coded S1–S6
//! constructors produce, so every consumer (campaign runner, fuzzer,
//! serve daemon, fabric coordinator) loads them interchangeably.
//!
//! Numeric fields accept either a bare number or a quoted *expression*
//! over `+ - * /`, parentheses, named variables, and four functions:
//!
//! * `mph(x)` — miles-per-hour to m/s,
//! * `gauss(std)` — zero-mean gaussian draw from the run's RNG stream,
//! * `uniform(lo, hi)` — uniform draw in `[lo, hi)`,
//! * `pos(near, far)` — selects by the run's [`InitialPosition`].
//!
//! Expressions are evaluated in a **fixed document order** (road first —
//! it never draws — then `ego_start_s`, `ego_speed`, each `[vars]` entry
//! in order, each `[[npc]]`'s `s`/`d`/`speed` then its phases, then
//! `[patch]`), delegating every draw to [`DeterministicRng`], so a DSL
//! scenario that mirrors a hard-coded constructor's draw order is
//! *bit-identical* to it.
//!
//! Parsing never panics: malformed input yields a typed [`ScnError`]
//! carrying the offending line number.

use crate::scenario::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::{
    units::mph, DeterministicRng, FrictionZone, Npc, NpcBehavior, NpcPlan, NpcTrigger,
    RoadBuilder, VehicleParams,
};
use std::fmt::Write as _;
use std::sync::OnceLock;

/// Maximum expression nesting depth — guards against stack overflow on
/// adversarial inputs like `((((((...`.
const MAX_EXPR_DEPTH: usize = 64;

/// Variable names bound by the compiler before user `[vars]` evaluate;
/// user variables may not shadow them (nor the function names).
const RESERVED_NAMES: [&str; 8] = [
    "gap",
    "lane_width",
    "ego_start_s",
    "ego_speed",
    "mph",
    "gauss",
    "uniform",
    "pos",
];

/// A parse or compile error, anchored to a line of the source document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScnError {
    /// 1-based line number in the `.scn` source.
    pub line: usize,
    /// Human-readable description of what went wrong.
    pub message: String,
}

impl ScnError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        Self {
            line,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for ScnError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScnError {}

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Add,
    Sub,
    Mul,
    Div,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Func {
    Mph,
    Gauss,
    Uniform,
    Pos,
}

impl Func {
    fn arity(self) -> usize {
        match self {
            Func::Mph | Func::Gauss => 1,
            Func::Uniform | Func::Pos => 2,
        }
    }

    fn name(self) -> &'static str {
        match self {
            Func::Mph => "mph",
            Func::Gauss => "gauss",
            Func::Uniform => "uniform",
            Func::Pos => "pos",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Expr {
    Num(f64),
    Var(String),
    Neg(Box<Expr>),
    Bin(Op, Box<Expr>, Box<Expr>),
    Call(Func, Vec<Expr>),
}

/// A numeric field holding a parsed expression plus its source text, so
/// documents re-render exactly as written.
#[derive(Debug, Clone)]
pub struct ExprField {
    expr: Expr,
    src: String,
    quoted: bool,
    line: usize,
}

impl PartialEq for ExprField {
    /// Line numbers are presentation, not content — two fields are equal
    /// when their expression and source text agree, wherever they sit.
    fn eq(&self, other: &Self) -> bool {
        self.expr == other.expr && self.src == other.src && self.quoted == other.quoted
    }
}

impl ExprField {
    /// A bare literal field (used when synthesising documents in code).
    #[must_use]
    pub fn number(value: f64) -> Self {
        Self {
            expr: Expr::Num(value),
            src: format!("{value:?}"),
            quoted: false,
            line: 0,
        }
    }

    /// A quoted expression field, parsed from `src`.
    pub fn expression(src: &str) -> Result<Self, ScnError> {
        let expr = parse_expression(src, 0)?;
        Ok(Self {
            expr,
            src: src.to_string(),
            quoted: true,
            line: 0,
        })
    }

    /// The source text as written in the document.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.src
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Num(f64),
    Ident(String),
    Plus,
    Minus,
    Star,
    Slash,
    LParen,
    RParen,
    Comma,
}

fn tokenize(src: &str, line: usize) -> Result<Vec<Token>, ScnError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' => i += 1,
            '+' => {
                tokens.push(Token::Plus);
                i += 1;
            }
            '-' => {
                tokens.push(Token::Minus);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            '/' => {
                tokens.push(Token::Slash);
                i += 1;
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '0'..='9' | '.' => {
                let start = i;
                while i < bytes.len() && matches!(bytes[i] as char, '0'..='9' | '.') {
                    i += 1;
                }
                // Optional exponent: e[+-]?digits.
                if i < bytes.len() && matches!(bytes[i] as char, 'e' | 'E') {
                    let mut j = i + 1;
                    if j < bytes.len() && matches!(bytes[j] as char, '+' | '-') {
                        j += 1;
                    }
                    if j < bytes.len() && (bytes[j] as char).is_ascii_digit() {
                        i = j;
                        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
                            i += 1;
                        }
                    }
                }
                let text = &src[start..i];
                let value: f64 = text
                    .parse()
                    .map_err(|_| ScnError::new(line, format!("malformed number `{text}`")))?;
                if !value.is_finite() {
                    return Err(ScnError::new(line, format!("non-finite number `{text}`")));
                }
                tokens.push(Token::Num(value));
            }
            'a'..='z' | 'A'..='Z' | '_' => {
                let start = i;
                while i < bytes.len()
                    && matches!(bytes[i] as char, 'a'..='z' | 'A'..='Z' | '0'..='9' | '_')
                {
                    i += 1;
                }
                tokens.push(Token::Ident(src[start..i].to_string()));
            }
            other => {
                return Err(ScnError::new(
                    line,
                    format!("unexpected character `{other}` in expression"),
                ));
            }
        }
    }
    Ok(tokens)
}

struct ExprParser<'a> {
    tokens: &'a [Token],
    pos: usize,
    line: usize,
}

impl ExprParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn bump(&mut self) -> Option<&Token> {
        let t = self.tokens.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, want: &Token, what: &str) -> Result<(), ScnError> {
        match self.bump() {
            Some(t) if t == want => Ok(()),
            _ => Err(ScnError::new(self.line, format!("expected {what}"))),
        }
    }

    fn additive(&mut self, depth: usize) -> Result<Expr, ScnError> {
        self.check_depth(depth)?;
        let mut lhs = self.multiplicative(depth + 1)?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => Op::Add,
                Some(Token::Minus) => Op::Sub,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.multiplicative(depth + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn multiplicative(&mut self, depth: usize) -> Result<Expr, ScnError> {
        self.check_depth(depth)?;
        let mut lhs = self.unary(depth + 1)?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => Op::Mul,
                Some(Token::Slash) => Op::Div,
                _ => break,
            };
            self.pos += 1;
            let rhs = self.unary(depth + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self, depth: usize) -> Result<Expr, ScnError> {
        self.check_depth(depth)?;
        if matches!(self.peek(), Some(Token::Minus)) {
            self.pos += 1;
            return Ok(Expr::Neg(Box::new(self.unary(depth + 1)?)));
        }
        self.primary(depth + 1)
    }

    fn primary(&mut self, depth: usize) -> Result<Expr, ScnError> {
        self.check_depth(depth)?;
        match self.bump().cloned() {
            Some(Token::Num(v)) => Ok(Expr::Num(v)),
            Some(Token::LParen) => {
                let inner = self.additive(depth + 1)?;
                self.expect(&Token::RParen, "`)`")?;
                Ok(inner)
            }
            Some(Token::Ident(name)) => {
                if matches!(self.peek(), Some(Token::LParen)) {
                    self.pos += 1;
                    let func = match name.as_str() {
                        "mph" => Func::Mph,
                        "gauss" => Func::Gauss,
                        "uniform" => Func::Uniform,
                        "pos" => Func::Pos,
                        other => {
                            return Err(ScnError::new(
                                self.line,
                                format!("unknown function `{other}`"),
                            ));
                        }
                    };
                    let mut args = Vec::new();
                    if matches!(self.peek(), Some(Token::RParen)) {
                        self.pos += 1;
                    } else {
                        loop {
                            args.push(self.additive(depth + 1)?);
                            match self.bump() {
                                Some(Token::Comma) => continue,
                                Some(Token::RParen) => break,
                                _ => {
                                    return Err(ScnError::new(
                                        self.line,
                                        "expected `,` or `)` in argument list",
                                    ));
                                }
                            }
                        }
                    }
                    if args.len() != func.arity() {
                        return Err(ScnError::new(
                            self.line,
                            format!(
                                "`{}` takes {} argument(s), got {}",
                                func.name(),
                                func.arity(),
                                args.len()
                            ),
                        ));
                    }
                    Ok(Expr::Call(func, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            _ => Err(ScnError::new(self.line, "expected a value in expression")),
        }
    }

    fn check_depth(&self, depth: usize) -> Result<(), ScnError> {
        if depth > MAX_EXPR_DEPTH {
            return Err(ScnError::new(self.line, "expression too deeply nested"));
        }
        Ok(())
    }
}

fn parse_expression(src: &str, line: usize) -> Result<Expr, ScnError> {
    let tokens = tokenize(src, line)?;
    if tokens.is_empty() {
        return Err(ScnError::new(line, "empty expression"));
    }
    let mut p = ExprParser {
        tokens: &tokens,
        pos: 0,
        line,
    };
    let expr = p.additive(0)?;
    if p.pos != tokens.len() {
        return Err(ScnError::new(
            line,
            "trailing tokens after expression".to_string(),
        ));
    }
    Ok(expr)
}

/// Evaluation context: the bound variables so far, the run's RNG stream,
/// and the position used by `pos(near, far)`.
struct EvalContext<'a> {
    vars: Vec<(String, f64)>,
    rng: &'a mut DeterministicRng,
    position: InitialPosition,
}

impl EvalContext<'_> {
    fn lookup(&self, name: &str) -> Option<f64> {
        self.vars
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn eval(&mut self, expr: &Expr) -> Result<f64, String> {
        match expr {
            Expr::Num(v) => Ok(*v),
            Expr::Var(name) => self
                .lookup(name)
                .ok_or_else(|| format!("unknown variable `{name}`")),
            Expr::Neg(inner) => Ok(-self.eval(inner)?),
            Expr::Bin(op, lhs, rhs) => {
                let l = self.eval(lhs)?;
                let r = self.eval(rhs)?;
                Ok(match op {
                    Op::Add => l + r,
                    Op::Sub => l - r,
                    Op::Mul => l * r,
                    Op::Div => l / r,
                })
            }
            Expr::Call(func, args) => match func {
                Func::Mph => Ok(mph(self.eval(&args[0])?)),
                Func::Gauss => {
                    let std = self.eval(&args[0])?;
                    Ok(self.rng.gaussian(std))
                }
                Func::Uniform => {
                    let lo = self.eval(&args[0])?;
                    let hi = self.eval(&args[1])?;
                    Ok(self.rng.uniform(lo, hi))
                }
                Func::Pos => {
                    // Both arms evaluate (they are literals in practice);
                    // the draw-free guarantee is documented, not enforced.
                    let near = self.eval(&args[0])?;
                    let far = self.eval(&args[1])?;
                    Ok(match self.position {
                        InitialPosition::Near => near,
                        InitialPosition::Far => far,
                    })
                }
            },
        }
    }

    fn eval_field(&mut self, field: &ExprField) -> Result<f64, ScnError> {
        let value = self
            .eval(&field.expr)
            .map_err(|e| ScnError::new(field.line, format!("in `{}`: {e}", field.src)))?;
        if !value.is_finite() {
            return Err(ScnError::new(
                field.line,
                format!("`{}` evaluated to a non-finite value", field.src),
            ));
        }
        Ok(value)
    }
}

// ---------------------------------------------------------------------------
// Document model
// ---------------------------------------------------------------------------

/// Which road geometry the scenario runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoadKind {
    /// The builtin highway paired with the run's [`InitialPosition`]
    /// (straight for Near, curvy for Far) — what S1–S6 use.
    Position,
    /// A single straight of `length` metres.
    Straight,
    /// The builtin curvy-highway pattern truncated at `length` metres.
    Curvy,
    /// Explicit `[[road.segment]]` entries.
    Segments,
}

/// Road description from the `[road]` section.
#[derive(Debug, Clone, PartialEq)]
pub struct RoadSpec {
    /// Geometry family.
    pub kind: RoadKind,
    /// Total length for `straight`/`curvy`, metres.
    pub length: Option<f64>,
    /// Lane width override, metres.
    pub lane_width: Option<f64>,
    /// Lane count override.
    pub lane_count: Option<u8>,
    /// Explicit segments for `kind = "segments"`.
    pub segments: Vec<SegmentSpec>,
}

/// One `[[road.segment]]` entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SegmentSpec {
    /// Segment length, metres.
    pub length: f64,
    /// Signed arc radius, metres (positive turns left). Exclusive with
    /// `curvature`.
    pub radius: Option<f64>,
    /// Signed curvature 1/R, 1/m. Exclusive with `radius`.
    pub curvature: Option<f64>,
    /// Friction multiplier over this segment; `1.0`/absent means dry base.
    pub friction: Option<f64>,
}

/// One `[[npc]]` entry: spawn state plus scripted phases.
#[derive(Debug, Clone, PartialEq)]
pub struct NpcSpec {
    /// Spawn arc length, metres.
    pub s: ExprField,
    /// Spawn lateral offset, metres.
    pub d: ExprField,
    /// Spawn (and initial cruise) speed, m/s.
    pub speed: ExprField,
    /// Ordered phases.
    pub phases: Vec<PhaseSpec>,
}

/// Phase trigger kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// Fires at the start of the run.
    Immediately,
    /// Fires when simulation time reaches the threshold, seconds.
    AtTime,
    /// Fires when the bumper gap to the ego drops below the threshold, m.
    GapBelow,
}

/// One `[[npc.phase]]` entry.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Activation condition.
    pub trigger: TriggerKind,
    /// Trigger threshold; `None` only for `immediately`.
    pub threshold: Option<ExprField>,
    /// What the NPC does once triggered.
    pub behavior: BehaviorSpec,
}

/// Phase behaviour with its parameters.
#[derive(Debug, Clone, PartialEq)]
pub enum BehaviorSpec {
    /// Track a target speed.
    SetSpeed {
        /// Target speed, m/s.
        target: ExprField,
        /// Accel/decel magnitude used to reach it, m/s².
        rate: ExprField,
    },
    /// Brake to a standstill.
    Stop {
        /// Braking deceleration magnitude, m/s².
        decel: ExprField,
    },
    /// Move laterally to a target offset.
    MoveLateral {
        /// Target lateral offset, metres.
        target_d: ExprField,
        /// Manoeuvre duration, seconds.
        duration: ExprField,
    },
}

/// One standalone `[[friction]]` band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZoneSpec {
    /// Band start arc length, metres.
    pub start_s: f64,
    /// Band end arc length (exclusive), metres.
    pub end_s: f64,
    /// Friction multiplier inside the band.
    pub scale: f64,
}

/// A parsed `.scn` document.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioDoc {
    /// Scenario name (e.g. `"S1"` or `"platoon-stop-and-go"`).
    pub name: String,
    /// One-line human description (may be empty).
    pub summary: String,
    /// Road geometry.
    pub road: RoadSpec,
    /// Ego spawn arc length.
    pub ego_start_s: ExprField,
    /// Ego spawn/cruise speed, m/s.
    pub ego_speed: ExprField,
    /// Named intermediate values, evaluated in order (draws happen here).
    pub vars: Vec<(String, ExprField)>,
    /// Scripted traffic.
    pub npcs: Vec<NpcSpec>,
    /// Road-patch arc length; absent means "far beyond the drive" (no
    /// draws are consumed).
    pub patch_start_s: Option<ExprField>,
    /// Standalone friction bands (appended after segment-derived bands).
    pub zones: Vec<ZoneSpec>,
}

// ---------------------------------------------------------------------------
// Document parsing
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Section {
    None,
    Scenario,
    Vars,
    Road,
    RoadSegment,
    Npc,
    Phase,
    Patch,
    Friction,
}

#[derive(Default)]
struct PartialRoad {
    header_line: usize,
    kind: Option<(RoadKind, usize)>,
    length: Option<f64>,
    lane_width: Option<f64>,
    lane_count: Option<u8>,
}

struct PartialSegment {
    header_line: usize,
    length: Option<f64>,
    radius: Option<f64>,
    curvature: Option<f64>,
    friction: Option<f64>,
}

struct PartialNpc {
    header_line: usize,
    s: Option<ExprField>,
    d: Option<ExprField>,
    speed: Option<ExprField>,
    phases: Vec<PartialPhase>,
}

struct PartialPhase {
    header_line: usize,
    trigger: Option<TriggerKind>,
    threshold: Option<ExprField>,
    behavior: Option<(String, usize)>,
    target: Option<ExprField>,
    rate: Option<ExprField>,
    decel: Option<ExprField>,
    target_d: Option<ExprField>,
    duration: Option<ExprField>,
}

struct PartialZone {
    header_line: usize,
    start_s: Option<f64>,
    end_s: Option<f64>,
    scale: Option<f64>,
}

/// Strips a `#` comment that sits outside any quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_quote = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quote => escaped = true,
            '"' => in_quote = !in_quote,
            '#' if !in_quote => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Unescapes a quoted string body (only `\"` and `\\` are recognised).
fn unquote(value: &str, line: usize) -> Result<String, ScnError> {
    let inner = &value[1..];
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    loop {
        match chars.next() {
            Some('"') => {
                let rest: String = chars.collect();
                if !rest.trim().is_empty() {
                    return Err(ScnError::new(line, "trailing text after closing quote"));
                }
                return Ok(out);
            }
            Some('\\') => match chars.next() {
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                _ => return Err(ScnError::new(line, "unsupported escape sequence")),
            },
            Some(c) => out.push(c),
            None => return Err(ScnError::new(line, "unterminated string")),
        }
    }
}

enum Value {
    Str(String),
    Bare(String),
}

fn parse_value(raw: &str, line: usize) -> Result<Value, ScnError> {
    let raw = raw.trim();
    if raw.is_empty() {
        return Err(ScnError::new(line, "missing value after `=`"));
    }
    if raw.starts_with('"') {
        Ok(Value::Str(unquote(raw, line)?))
    } else {
        Ok(Value::Bare(raw.to_string()))
    }
}

fn bare_number(text: &str, line: usize) -> Result<f64, ScnError> {
    let v: f64 = text
        .trim()
        .parse()
        .map_err(|_| ScnError::new(line, format!("expected a number, got `{}`", text.trim())))?;
    if !v.is_finite() {
        return Err(ScnError::new(line, "number must be finite"));
    }
    Ok(v)
}

/// Parses a numeric field value: a bare number or a quoted expression.
fn expr_field(value: Value, line: usize) -> Result<ExprField, ScnError> {
    match value {
        Value::Bare(text) => {
            let v = bare_number(&text, line)?;
            Ok(ExprField {
                expr: Expr::Num(v),
                src: text.trim().to_string(),
                quoted: false,
                line,
            })
        }
        Value::Str(src) => {
            let expr = parse_expression(&src, line)?;
            Ok(ExprField {
                expr,
                src,
                quoted: true,
                line,
            })
        }
    }
}

fn number_field(value: Value, line: usize) -> Result<f64, ScnError> {
    match value {
        Value::Bare(text) => bare_number(&text, line),
        Value::Str(_) => Err(ScnError::new(line, "expected a number, not a string")),
    }
}

fn string_field(value: Value, line: usize) -> Result<String, ScnError> {
    match value {
        Value::Str(s) => Ok(s),
        Value::Bare(_) => Err(ScnError::new(line, "expected a quoted string")),
    }
}

fn set_once<T>(slot: &mut Option<T>, value: T, key: &str, line: usize) -> Result<(), ScnError> {
    if slot.is_some() {
        return Err(ScnError::new(line, format!("duplicate key `{key}`")));
    }
    *slot = Some(value);
    Ok(())
}

fn is_ident(name: &str) -> bool {
    let mut chars = name.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_alphabetic() || c == '_')
        && chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
}

impl ScenarioDoc {
    /// Parses a `.scn` document. Never panics; every failure is a typed
    /// [`ScnError`] with the offending line number.
    pub fn parse(text: &str) -> Result<Self, ScnError> {
        let mut section = Section::None;
        let mut name: Option<String> = None;
        let mut summary: Option<String> = None;
        let mut ego_start_s: Option<ExprField> = None;
        let mut ego_speed: Option<ExprField> = None;
        let mut vars: Vec<(String, ExprField)> = Vec::new();
        let mut road: Option<PartialRoad> = None;
        let mut segments: Vec<PartialSegment> = Vec::new();
        let mut npcs: Vec<PartialNpc> = Vec::new();
        let mut patch: Option<(usize, Option<ExprField>)> = None;
        let mut zones: Vec<PartialZone> = Vec::new();
        let mut scenario_line = 0usize;
        let mut vars_seen = false;

        for (idx, raw_line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = strip_comment(raw_line).trim();
            if line.is_empty() {
                continue;
            }

            if let Some(header) = line.strip_prefix("[[") {
                let Some(sect) = header.strip_suffix("]]") else {
                    return Err(ScnError::new(lineno, "malformed section header"));
                };
                match sect.trim() {
                    "road.segment" => {
                        segments.push(PartialSegment {
                            header_line: lineno,
                            length: None,
                            radius: None,
                            curvature: None,
                            friction: None,
                        });
                        section = Section::RoadSegment;
                    }
                    "npc" => {
                        npcs.push(PartialNpc {
                            header_line: lineno,
                            s: None,
                            d: None,
                            speed: None,
                            phases: Vec::new(),
                        });
                        section = Section::Npc;
                    }
                    "npc.phase" => {
                        let Some(npc) = npcs.last_mut() else {
                            return Err(ScnError::new(
                                lineno,
                                "[[npc.phase]] before any [[npc]]",
                            ));
                        };
                        npc.phases.push(PartialPhase {
                            header_line: lineno,
                            trigger: None,
                            threshold: None,
                            behavior: None,
                            target: None,
                            rate: None,
                            decel: None,
                            target_d: None,
                            duration: None,
                        });
                        section = Section::Phase;
                    }
                    "friction" => {
                        zones.push(PartialZone {
                            header_line: lineno,
                            start_s: None,
                            end_s: None,
                            scale: None,
                        });
                        section = Section::Friction;
                    }
                    other => {
                        return Err(ScnError::new(
                            lineno,
                            format!("unknown section `[[{other}]]`"),
                        ));
                    }
                }
                continue;
            }

            if let Some(header) = line.strip_prefix('[') {
                let Some(sect) = header.strip_suffix(']') else {
                    return Err(ScnError::new(lineno, "malformed section header"));
                };
                section = match sect.trim() {
                    "scenario" => {
                        if scenario_line != 0 {
                            return Err(ScnError::new(lineno, "duplicate [scenario] section"));
                        }
                        scenario_line = lineno;
                        Section::Scenario
                    }
                    "vars" => {
                        if vars_seen {
                            return Err(ScnError::new(lineno, "duplicate [vars] section"));
                        }
                        vars_seen = true;
                        Section::Vars
                    }
                    "road" => {
                        if road.is_some() {
                            return Err(ScnError::new(lineno, "duplicate [road] section"));
                        }
                        road = Some(PartialRoad {
                            header_line: lineno,
                            ..PartialRoad::default()
                        });
                        Section::Road
                    }
                    "patch" => {
                        if patch.is_some() {
                            return Err(ScnError::new(lineno, "duplicate [patch] section"));
                        }
                        patch = Some((lineno, None));
                        Section::Patch
                    }
                    other => {
                        return Err(ScnError::new(lineno, format!("unknown section `[{other}]`")));
                    }
                };
                continue;
            }

            let Some((key, value)) = line.split_once('=') else {
                return Err(ScnError::new(lineno, "expected `key = value`"));
            };
            let key = key.trim();
            let value = parse_value(value, lineno)?;

            match section {
                Section::None => {
                    return Err(ScnError::new(lineno, "key outside any section"));
                }
                Section::Scenario => match key {
                    "name" => set_once(&mut name, string_field(value, lineno)?, key, lineno)?,
                    "summary" => set_once(&mut summary, string_field(value, lineno)?, key, lineno)?,
                    "ego_start_s" => {
                        set_once(&mut ego_start_s, expr_field(value, lineno)?, key, lineno)?;
                    }
                    "ego_speed" => {
                        set_once(&mut ego_speed, expr_field(value, lineno)?, key, lineno)?;
                    }
                    other => {
                        return Err(ScnError::new(
                            lineno,
                            format!("unknown key `{other}` in [scenario]"),
                        ));
                    }
                },
                Section::Vars => {
                    if !is_ident(key) {
                        return Err(ScnError::new(
                            lineno,
                            format!("invalid variable name `{key}`"),
                        ));
                    }
                    if RESERVED_NAMES.contains(&key) {
                        return Err(ScnError::new(
                            lineno,
                            format!("variable name `{key}` is reserved"),
                        ));
                    }
                    if vars.iter().any(|(n, _)| n == key) {
                        return Err(ScnError::new(lineno, format!("duplicate variable `{key}`")));
                    }
                    vars.push((key.to_string(), expr_field(value, lineno)?));
                }
                Section::Road => {
                    let r = road.as_mut().expect("road section active");
                    match key {
                        "kind" => {
                            if r.kind.is_some() {
                                return Err(ScnError::new(lineno, "duplicate key `kind`"));
                            }
                            let text = string_field(value, lineno)?;
                            let kind = match text.as_str() {
                                "position" => RoadKind::Position,
                                "straight" => RoadKind::Straight,
                                "curvy" => RoadKind::Curvy,
                                "segments" => RoadKind::Segments,
                                other => {
                                    return Err(ScnError::new(
                                        lineno,
                                        format!("unknown road kind `{other}`"),
                                    ));
                                }
                            };
                            r.kind = Some((kind, lineno));
                        }
                        "length" => {
                            set_once(&mut r.length, number_field(value, lineno)?, key, lineno)?;
                        }
                        "lane_width" => {
                            set_once(&mut r.lane_width, number_field(value, lineno)?, key, lineno)?;
                        }
                        "lane_count" => {
                            let v = number_field(value, lineno)?;
                            if v.fract() != 0.0 || !(1.0..=8.0).contains(&v) {
                                return Err(ScnError::new(
                                    lineno,
                                    "lane_count must be an integer in 1..=8",
                                ));
                            }
                            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                            set_once(&mut r.lane_count, v as u8, key, lineno)?;
                        }
                        other => {
                            return Err(ScnError::new(
                                lineno,
                                format!("unknown key `{other}` in [road]"),
                            ));
                        }
                    }
                }
                Section::RoadSegment => {
                    let seg = segments.last_mut().expect("segment section active");
                    match key {
                        "length" => {
                            set_once(&mut seg.length, number_field(value, lineno)?, key, lineno)?;
                        }
                        "radius" => {
                            set_once(&mut seg.radius, number_field(value, lineno)?, key, lineno)?;
                        }
                        "curvature" => {
                            set_once(&mut seg.curvature, number_field(value, lineno)?, key, lineno)?;
                        }
                        "friction" => {
                            set_once(&mut seg.friction, number_field(value, lineno)?, key, lineno)?;
                        }
                        other => {
                            return Err(ScnError::new(
                                lineno,
                                format!("unknown key `{other}` in [[road.segment]]"),
                            ));
                        }
                    }
                }
                Section::Npc => {
                    let npc = npcs.last_mut().expect("npc section active");
                    match key {
                        "s" => set_once(&mut npc.s, expr_field(value, lineno)?, key, lineno)?,
                        "d" => set_once(&mut npc.d, expr_field(value, lineno)?, key, lineno)?,
                        "speed" => {
                            set_once(&mut npc.speed, expr_field(value, lineno)?, key, lineno)?;
                        }
                        other => {
                            return Err(ScnError::new(
                                lineno,
                                format!("unknown key `{other}` in [[npc]]"),
                            ));
                        }
                    }
                }
                Section::Phase => {
                    let phase = npcs
                        .last_mut()
                        .and_then(|n| n.phases.last_mut())
                        .expect("phase section active");
                    match key {
                        "trigger" => {
                            if phase.trigger.is_some() {
                                return Err(ScnError::new(lineno, "duplicate key `trigger`"));
                            }
                            let text = string_field(value, lineno)?;
                            phase.trigger = Some(match text.as_str() {
                                "immediately" => TriggerKind::Immediately,
                                "at_time" => TriggerKind::AtTime,
                                "gap_below" => TriggerKind::GapBelow,
                                other => {
                                    return Err(ScnError::new(
                                        lineno,
                                        format!("unknown trigger `{other}`"),
                                    ));
                                }
                            });
                        }
                        "threshold" => {
                            set_once(&mut phase.threshold, expr_field(value, lineno)?, key, lineno)?;
                        }
                        "behavior" => {
                            if phase.behavior.is_some() {
                                return Err(ScnError::new(lineno, "duplicate key `behavior`"));
                            }
                            let text = string_field(value, lineno)?;
                            if !matches!(text.as_str(), "set_speed" | "stop" | "move_lateral") {
                                return Err(ScnError::new(
                                    lineno,
                                    format!("unknown behavior `{text}`"),
                                ));
                            }
                            phase.behavior = Some((text, lineno));
                        }
                        "target" => {
                            set_once(&mut phase.target, expr_field(value, lineno)?, key, lineno)?;
                        }
                        "rate" => {
                            set_once(&mut phase.rate, expr_field(value, lineno)?, key, lineno)?;
                        }
                        "decel" => {
                            set_once(&mut phase.decel, expr_field(value, lineno)?, key, lineno)?;
                        }
                        "target_d" => {
                            set_once(&mut phase.target_d, expr_field(value, lineno)?, key, lineno)?;
                        }
                        "duration" => {
                            set_once(&mut phase.duration, expr_field(value, lineno)?, key, lineno)?;
                        }
                        other => {
                            return Err(ScnError::new(
                                lineno,
                                format!("unknown key `{other}` in [[npc.phase]]"),
                            ));
                        }
                    }
                }
                Section::Patch => {
                    let p = patch.as_mut().expect("patch section active");
                    match key {
                        "start_s" => {
                            if p.1.is_some() {
                                return Err(ScnError::new(lineno, "duplicate key `start_s`"));
                            }
                            p.1 = Some(expr_field(value, lineno)?);
                        }
                        other => {
                            return Err(ScnError::new(
                                lineno,
                                format!("unknown key `{other}` in [patch]"),
                            ));
                        }
                    }
                }
                Section::Friction => {
                    let z = zones.last_mut().expect("friction section active");
                    match key {
                        "start_s" => {
                            set_once(&mut z.start_s, number_field(value, lineno)?, key, lineno)?;
                        }
                        "end_s" => {
                            set_once(&mut z.end_s, number_field(value, lineno)?, key, lineno)?;
                        }
                        "scale" => {
                            set_once(&mut z.scale, number_field(value, lineno)?, key, lineno)?;
                        }
                        other => {
                            return Err(ScnError::new(
                                lineno,
                                format!("unknown key `{other}` in [[friction]]"),
                            ));
                        }
                    }
                }
            }
        }

        // --- Finalise + validate -----------------------------------------
        if scenario_line == 0 {
            return Err(ScnError::new(1, "missing [scenario] section"));
        }
        let name = name.ok_or_else(|| ScnError::new(scenario_line, "missing `name`"))?;
        let ego_start_s =
            ego_start_s.ok_or_else(|| ScnError::new(scenario_line, "missing `ego_start_s`"))?;
        let ego_speed =
            ego_speed.ok_or_else(|| ScnError::new(scenario_line, "missing `ego_speed`"))?;

        let road = {
            let r = road.ok_or_else(|| ScnError::new(1, "missing [road] section"))?;
            let (kind, kind_line) = r
                .kind
                .ok_or_else(|| ScnError::new(r.header_line, "missing `kind` in [road]"))?;
            if kind != RoadKind::Segments {
                if let Some(seg) = segments.first() {
                    return Err(ScnError::new(
                        seg.header_line,
                        "[[road.segment]] requires `kind = \"segments\"`",
                    ));
                }
            }
            match kind {
                RoadKind::Position => {
                    if r.length.is_some() || r.lane_width.is_some() || r.lane_count.is_some() {
                        return Err(ScnError::new(
                            kind_line,
                            "`position` roads take no length/lane overrides",
                        ));
                    }
                }
                RoadKind::Straight | RoadKind::Curvy => {
                    let len = r
                        .length
                        .ok_or_else(|| ScnError::new(kind_line, "missing road `length`"))?;
                    if len <= 0.0 {
                        return Err(ScnError::new(kind_line, "road `length` must be positive"));
                    }
                }
                RoadKind::Segments => {
                    if r.length.is_some() {
                        return Err(ScnError::new(
                            kind_line,
                            "`segments` roads derive length from their segments",
                        ));
                    }
                    if segments.is_empty() {
                        return Err(ScnError::new(
                            kind_line,
                            "`segments` road needs at least one [[road.segment]]",
                        ));
                    }
                }
            }
            if let Some(w) = r.lane_width {
                if w <= 0.0 {
                    return Err(ScnError::new(r.header_line, "lane_width must be positive"));
                }
            }
            let mut specs = Vec::with_capacity(segments.len());
            for seg in &segments {
                let length = seg
                    .length
                    .ok_or_else(|| ScnError::new(seg.header_line, "segment missing `length`"))?;
                if length <= 0.0 {
                    return Err(ScnError::new(
                        seg.header_line,
                        "segment length must be positive",
                    ));
                }
                if seg.radius.is_some() && seg.curvature.is_some() {
                    return Err(ScnError::new(
                        seg.header_line,
                        "segment takes `radius` or `curvature`, not both",
                    ));
                }
                if seg.radius == Some(0.0) {
                    return Err(ScnError::new(seg.header_line, "radius must be non-zero"));
                }
                if seg.curvature == Some(0.0) {
                    return Err(ScnError::new(
                        seg.header_line,
                        "zero curvature: omit the key for a straight segment",
                    ));
                }
                if let Some(f) = seg.friction {
                    if f <= 0.0 || f > 10.0 {
                        return Err(ScnError::new(
                            seg.header_line,
                            "segment friction must be in (0, 10]",
                        ));
                    }
                }
                specs.push(SegmentSpec {
                    length,
                    radius: seg.radius,
                    curvature: seg.curvature,
                    friction: seg.friction,
                });
            }
            RoadSpec {
                kind,
                length: r.length,
                lane_width: r.lane_width,
                lane_count: r.lane_count,
                segments: specs,
            }
        };

        let mut npc_specs = Vec::with_capacity(npcs.len());
        for npc in &npcs {
            let s = npc
                .s
                .clone()
                .ok_or_else(|| ScnError::new(npc.header_line, "npc missing `s`"))?;
            let d = npc
                .d
                .clone()
                .ok_or_else(|| ScnError::new(npc.header_line, "npc missing `d`"))?;
            let speed = npc
                .speed
                .clone()
                .ok_or_else(|| ScnError::new(npc.header_line, "npc missing `speed`"))?;
            let mut phases = Vec::with_capacity(npc.phases.len());
            for ph in &npc.phases {
                let trigger = ph
                    .trigger
                    .ok_or_else(|| ScnError::new(ph.header_line, "phase missing `trigger`"))?;
                match (trigger, &ph.threshold) {
                    (TriggerKind::Immediately, Some(t)) => {
                        return Err(ScnError::new(
                            t.line,
                            "`immediately` takes no `threshold`",
                        ));
                    }
                    (TriggerKind::AtTime | TriggerKind::GapBelow, None) => {
                        return Err(ScnError::new(ph.header_line, "phase missing `threshold`"));
                    }
                    _ => {}
                }
                let (behavior_name, behavior_line) = ph
                    .behavior
                    .clone()
                    .ok_or_else(|| ScnError::new(ph.header_line, "phase missing `behavior`"))?;
                let reject = |slot: &Option<ExprField>, key: &str| -> Result<(), ScnError> {
                    if let Some(f) = slot {
                        return Err(ScnError::new(
                            f.line,
                            format!("`{key}` is not a `{behavior_name}` parameter"),
                        ));
                    }
                    Ok(())
                };
                let behavior = match behavior_name.as_str() {
                    "set_speed" => {
                        reject(&ph.decel, "decel")?;
                        reject(&ph.target_d, "target_d")?;
                        reject(&ph.duration, "duration")?;
                        BehaviorSpec::SetSpeed {
                            target: ph.target.clone().ok_or_else(|| {
                                ScnError::new(behavior_line, "set_speed missing `target`")
                            })?,
                            rate: ph.rate.clone().ok_or_else(|| {
                                ScnError::new(behavior_line, "set_speed missing `rate`")
                            })?,
                        }
                    }
                    "stop" => {
                        reject(&ph.target, "target")?;
                        reject(&ph.rate, "rate")?;
                        reject(&ph.target_d, "target_d")?;
                        reject(&ph.duration, "duration")?;
                        BehaviorSpec::Stop {
                            decel: ph.decel.clone().ok_or_else(|| {
                                ScnError::new(behavior_line, "stop missing `decel`")
                            })?,
                        }
                    }
                    "move_lateral" => {
                        reject(&ph.target, "target")?;
                        reject(&ph.rate, "rate")?;
                        reject(&ph.decel, "decel")?;
                        BehaviorSpec::MoveLateral {
                            target_d: ph.target_d.clone().ok_or_else(|| {
                                ScnError::new(behavior_line, "move_lateral missing `target_d`")
                            })?,
                            duration: ph.duration.clone().ok_or_else(|| {
                                ScnError::new(behavior_line, "move_lateral missing `duration`")
                            })?,
                        }
                    }
                    _ => unreachable!("behavior validated at parse"),
                };
                phases.push(PhaseSpec {
                    trigger,
                    threshold: ph.threshold.clone(),
                    behavior,
                });
            }
            npc_specs.push(NpcSpec {
                s,
                d,
                speed,
                phases,
            });
        }
        if npc_specs.is_empty() {
            return Err(ScnError::new(scenario_line, "scenario needs at least one [[npc]]"));
        }

        let mut zone_specs = Vec::with_capacity(zones.len());
        for z in &zones {
            let start_s = z
                .start_s
                .ok_or_else(|| ScnError::new(z.header_line, "friction band missing `start_s`"))?;
            let end_s = z
                .end_s
                .ok_or_else(|| ScnError::new(z.header_line, "friction band missing `end_s`"))?;
            let scale = z
                .scale
                .ok_or_else(|| ScnError::new(z.header_line, "friction band missing `scale`"))?;
            if start_s < 0.0 || end_s <= start_s {
                return Err(ScnError::new(
                    z.header_line,
                    "friction band needs 0 <= start_s < end_s",
                ));
            }
            if scale <= 0.0 || scale > 10.0 {
                return Err(ScnError::new(
                    z.header_line,
                    "friction scale must be in (0, 10]",
                ));
            }
            zone_specs.push(ZoneSpec {
                start_s,
                end_s,
                scale,
            });
        }

        Ok(Self {
            name,
            summary: summary.unwrap_or_default(),
            road,
            ego_start_s,
            ego_speed,
            vars,
            npcs: npc_specs,
            patch_start_s: patch.and_then(|(_, f)| f),
            zones: zone_specs,
        })
    }

    /// Renders the document back to canonical `.scn` text. The round trip
    /// `parse(render(doc)) == doc` holds for every parseable document.
    #[must_use]
    pub fn render(&self) -> String {
        fn field(out: &mut String, key: &str, f: &ExprField) {
            if f.quoted {
                let escaped = f.src.replace('\\', "\\\\").replace('"', "\\\"");
                let _ = writeln!(out, "{key} = \"{escaped}\"");
            } else {
                let _ = writeln!(out, "{key} = {}", f.src);
            }
        }
        fn num(out: &mut String, key: &str, v: f64) {
            let _ = writeln!(out, "{key} = {v:?}");
        }

        let mut out = String::new();
        out.push_str("[scenario]\n");
        let _ = writeln!(out, "name = \"{}\"", self.name.replace('\\', "\\\\").replace('"', "\\\""));
        if !self.summary.is_empty() {
            let _ = writeln!(
                out,
                "summary = \"{}\"",
                self.summary.replace('\\', "\\\\").replace('"', "\\\"")
            );
        }
        field(&mut out, "ego_start_s", &self.ego_start_s);
        field(&mut out, "ego_speed", &self.ego_speed);

        out.push_str("\n[road]\n");
        let kind = match self.road.kind {
            RoadKind::Position => "position",
            RoadKind::Straight => "straight",
            RoadKind::Curvy => "curvy",
            RoadKind::Segments => "segments",
        };
        let _ = writeln!(out, "kind = \"{kind}\"");
        if let Some(len) = self.road.length {
            num(&mut out, "length", len);
        }
        if let Some(w) = self.road.lane_width {
            num(&mut out, "lane_width", w);
        }
        if let Some(n) = self.road.lane_count {
            let _ = writeln!(out, "lane_count = {n}");
        }
        for seg in &self.road.segments {
            out.push_str("\n[[road.segment]]\n");
            num(&mut out, "length", seg.length);
            if let Some(r) = seg.radius {
                num(&mut out, "radius", r);
            }
            if let Some(k) = seg.curvature {
                num(&mut out, "curvature", k);
            }
            if let Some(f) = seg.friction {
                num(&mut out, "friction", f);
            }
        }

        if !self.vars.is_empty() {
            out.push_str("\n[vars]\n");
            for (name, f) in &self.vars {
                field(&mut out, name, f);
            }
        }

        for npc in &self.npcs {
            out.push_str("\n[[npc]]\n");
            field(&mut out, "s", &npc.s);
            field(&mut out, "d", &npc.d);
            field(&mut out, "speed", &npc.speed);
            for phase in &npc.phases {
                out.push_str("\n[[npc.phase]]\n");
                let trigger = match phase.trigger {
                    TriggerKind::Immediately => "immediately",
                    TriggerKind::AtTime => "at_time",
                    TriggerKind::GapBelow => "gap_below",
                };
                let _ = writeln!(out, "trigger = \"{trigger}\"");
                if let Some(t) = &phase.threshold {
                    field(&mut out, "threshold", t);
                }
                match &phase.behavior {
                    BehaviorSpec::SetSpeed { target, rate } => {
                        out.push_str("behavior = \"set_speed\"\n");
                        field(&mut out, "target", target);
                        field(&mut out, "rate", rate);
                    }
                    BehaviorSpec::Stop { decel } => {
                        out.push_str("behavior = \"stop\"\n");
                        field(&mut out, "decel", decel);
                    }
                    BehaviorSpec::MoveLateral { target_d, duration } => {
                        out.push_str("behavior = \"move_lateral\"\n");
                        field(&mut out, "target_d", target_d);
                        field(&mut out, "duration", duration);
                    }
                }
            }
        }

        if let Some(p) = &self.patch_start_s {
            out.push_str("\n[patch]\n");
            field(&mut out, "start_s", p);
        }

        for z in &self.zones {
            out.push_str("\n[[friction]]\n");
            num(&mut out, "start_s", z.start_s);
            num(&mut out, "end_s", z.end_s);
            num(&mut out, "scale", z.scale);
        }

        out
    }

    /// Compiles the document into a runnable [`ScenarioSetup`].
    ///
    /// Draw order (the bit-identity contract): the road builds first and
    /// never draws; then `ego_start_s`, `ego_speed`, each `[vars]` entry in
    /// document order (eagerly, even if unused), each NPC's `s`, `d`,
    /// `speed` then its phases (threshold before behaviour parameters),
    /// and finally `[patch] start_s`. An absent `[patch]` consumes no
    /// draws and places the patch far beyond any drive.
    pub fn compile(
        &self,
        id: ScenarioId,
        position: InitialPosition,
        rng: &mut DeterministicRng,
    ) -> Result<ScenarioSetup, ScnError> {
        // Road first: no randomness, so failures here cannot skew draws.
        let mut friction_zones = Vec::new();
        let road = match self.road.kind {
            RoadKind::Position => position.road(),
            RoadKind::Straight | RoadKind::Curvy => {
                let len = self.road.length.expect("validated at parse");
                let mut b = if self.road.kind == RoadKind::Straight {
                    RoadBuilder::straight_highway(len)
                } else {
                    RoadBuilder::curvy_highway(len)
                };
                if let Some(w) = self.road.lane_width {
                    b = b.lane_width(w);
                }
                if let Some(n) = self.road.lane_count {
                    b = b.lane_count(n);
                }
                b.build()
            }
            RoadKind::Segments => {
                let mut b = RoadBuilder::new();
                let mut cursor = 0.0;
                for seg in &self.road.segments {
                    b = match (seg.radius, seg.curvature) {
                        (Some(r), None) => b.arc(seg.length, r),
                        (None, Some(k)) => b.arc(seg.length, 1.0 / k),
                        (None, None) => b.straight(seg.length),
                        (Some(_), Some(_)) => unreachable!("validated at parse"),
                    };
                    if let Some(f) = seg.friction {
                        if f != 1.0 {
                            friction_zones.push(FrictionZone {
                                start_s: cursor,
                                end_s: cursor + seg.length,
                                scale: f,
                            });
                        }
                    }
                    cursor += seg.length;
                }
                if let Some(w) = self.road.lane_width {
                    b = b.lane_width(w);
                }
                if let Some(n) = self.road.lane_count {
                    b = b.lane_count(n);
                }
                b.build()
            }
        };
        for z in &self.zones {
            friction_zones.push(FrictionZone {
                start_s: z.start_s,
                end_s: z.end_s,
                scale: z.scale,
            });
        }

        let mut ctx = EvalContext {
            vars: vec![
                ("gap".to_string(), position.distance()),
                ("lane_width".to_string(), road.lane_width()),
            ],
            rng,
            position,
        };
        let ego_start_s = ctx.eval_field(&self.ego_start_s)?;
        ctx.vars.push(("ego_start_s".to_string(), ego_start_s));
        let ego_speed = ctx.eval_field(&self.ego_speed)?;
        ctx.vars.push(("ego_speed".to_string(), ego_speed));
        for (name, field) in &self.vars {
            let v = ctx.eval_field(field)?;
            ctx.vars.push((name.clone(), v));
        }

        let params = VehicleParams::sedan();
        let mut npcs = Vec::with_capacity(self.npcs.len());
        for spec in &self.npcs {
            let s = ctx.eval_field(&spec.s)?;
            let d = ctx.eval_field(&spec.d)?;
            let speed = ctx.eval_field(&spec.speed)?;
            let mut plan = NpcPlan::cruise();
            for phase in &spec.phases {
                let trigger = match phase.trigger {
                    TriggerKind::Immediately => NpcTrigger::Immediately,
                    TriggerKind::AtTime => NpcTrigger::AtTime(
                        ctx.eval_field(phase.threshold.as_ref().expect("validated"))?,
                    ),
                    TriggerKind::GapBelow => NpcTrigger::GapToEgoBelow(
                        ctx.eval_field(phase.threshold.as_ref().expect("validated"))?,
                    ),
                };
                let behavior = match &phase.behavior {
                    BehaviorSpec::SetSpeed { target, rate } => NpcBehavior::SetSpeed {
                        target: ctx.eval_field(target)?,
                        rate: ctx.eval_field(rate)?,
                    },
                    BehaviorSpec::Stop { decel } => NpcBehavior::Stop {
                        decel: ctx.eval_field(decel)?,
                    },
                    BehaviorSpec::MoveLateral { target_d, duration } => NpcBehavior::MoveLateral {
                        target_d: ctx.eval_field(target_d)?,
                        duration: ctx.eval_field(duration)?,
                    },
                };
                plan = plan.then(trigger, behavior);
            }
            npcs.push(Npc::new(params, s, d, speed, plan));
        }

        let patch_start_s = match &self.patch_start_s {
            Some(field) => ctx.eval_field(field)?,
            // Far beyond any drive; deliberately draw-free.
            None => 1.0e9,
        };

        Ok(ScenarioSetup {
            id,
            position,
            road,
            ego_start_s,
            ego_speed,
            npcs,
            patch_start_s,
            friction_zones,
        })
    }
}

// ---------------------------------------------------------------------------
// Builtin catalog
// ---------------------------------------------------------------------------

/// The six golden builtin scenario files, compiled into the binary.
pub const BUILTIN_SOURCES: [(&str, &str); 6] = [
    ("s1.scn", include_str!("../../../scenarios/builtin/s1.scn")),
    ("s2.scn", include_str!("../../../scenarios/builtin/s2.scn")),
    ("s3.scn", include_str!("../../../scenarios/builtin/s3.scn")),
    ("s4.scn", include_str!("../../../scenarios/builtin/s4.scn")),
    ("s5.scn", include_str!("../../../scenarios/builtin/s5.scn")),
    ("s6.scn", include_str!("../../../scenarios/builtin/s6.scn")),
];

/// The set of scenario documents every consumer builds runs from.
///
/// Defaults to the six golden builtin `.scn` files (bit-identical to the
/// historical hard-coded constructors); individual entries can be replaced
/// via `ADAS_SCENARIO="S1=path/to/file.scn,..."`.
#[derive(Debug, Clone)]
pub struct ScenarioCatalog {
    docs: Vec<ScenarioDoc>,
}

impl ScenarioCatalog {
    /// Parses the six compiled-in builtin documents.
    pub fn builtin() -> Result<Self, String> {
        let mut docs = Vec::with_capacity(6);
        for (file, src) in BUILTIN_SOURCES {
            docs.push(ScenarioDoc::parse(src).map_err(|e| format!("{file}: {e}"))?);
        }
        Ok(Self { docs })
    }

    /// The builtin catalog with `ADAS_SCENARIO` overrides applied.
    ///
    /// The variable holds comma-separated `SN=path` pairs; each file is
    /// parsed and validated (compiled for both positions with a throwaway
    /// RNG) before it replaces a builtin.
    pub fn from_env() -> Result<Self, String> {
        let mut catalog = Self::builtin()?;
        let Ok(spec) = std::env::var("ADAS_SCENARIO") else {
            return Ok(catalog);
        };
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            let Some((label, path)) = entry.split_once('=') else {
                return Err(format!("ADAS_SCENARIO entry `{entry}` is not `SN=path`"));
            };
            let label = label.trim();
            let id = ScenarioId::ALL
                .into_iter()
                .find(|s| s.label().eq_ignore_ascii_case(label))
                .ok_or_else(|| format!("ADAS_SCENARIO: unknown scenario `{label}`"))?;
            let path = path.trim();
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("ADAS_SCENARIO: cannot read `{path}`: {e}"))?;
            let doc = ScenarioDoc::parse(&text).map_err(|e| format!("{path}: {e}"))?;
            for position in InitialPosition::ALL {
                let mut probe = DeterministicRng::from_seed(0);
                doc.compile(id, position, &mut probe)
                    .map_err(|e| format!("{path} ({position:?}): {e}"))?;
            }
            catalog.docs[id.index()] = doc;
        }
        Ok(catalog)
    }

    /// The process-wide catalog, initialised once from the environment.
    ///
    /// # Panics
    ///
    /// Panics on first use if a builtin fails to parse (a build defect) or
    /// an `ADAS_SCENARIO` override is invalid — misconfigured scenario
    /// files should fail loudly, not silently fall back.
    #[must_use]
    pub fn global() -> &'static ScenarioCatalog {
        static CATALOG: OnceLock<ScenarioCatalog> = OnceLock::new();
        CATALOG.get_or_init(|| {
            ScenarioCatalog::from_env()
                .unwrap_or_else(|e| panic!("scenario catalog failed to load: {e}"))
        })
    }

    /// The document for a scenario.
    #[must_use]
    pub fn doc(&self, id: ScenarioId) -> &ScenarioDoc {
        &self.docs[id.index()]
    }

    /// FNV-1a digest over the canonical renders of every document — the
    /// scenario-content component of campaign cache keys. Two catalogs
    /// agree exactly when every scenario they would compile agrees.
    #[must_use]
    pub fn digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |byte: u8| {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        };
        for doc in &self.docs {
            for byte in doc.render().bytes() {
                mix(byte);
            }
            mix(0); // document separator
        }
        h
    }

    /// Compiles a scenario into a runnable setup.
    ///
    /// # Panics
    ///
    /// Panics if the document fails to compile — catalog entries are
    /// validated at load, so this indicates a bug, not bad input.
    #[must_use]
    pub fn build(
        &self,
        id: ScenarioId,
        position: InitialPosition,
        rng: &mut DeterministicRng,
    ) -> ScenarioSetup {
        self.docs[id.index()]
            .compile(id, position, rng)
            .unwrap_or_else(|e| panic!("scenario {id} failed to compile: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINIMAL: &str = r#"
# A minimal two-vehicle world.
[scenario]
name = "mini"
ego_start_s = 10.0
ego_speed = "mph(50.0)"

[road]
kind = "straight"
length = 2000.0

[[npc]]
s = 80.0
d = 0.0
speed = "mph(30.0)"
"#;

    #[test]
    fn minimal_document_parses_and_compiles() {
        let doc = ScenarioDoc::parse(MINIMAL).expect("parses");
        assert_eq!(doc.name, "mini");
        let mut rng = DeterministicRng::from_seed(3);
        let setup = doc
            .compile(ScenarioId::S1, InitialPosition::Near, &mut rng)
            .expect("compiles");
        assert_eq!(setup.npcs.len(), 1);
        assert!((setup.ego_speed - mph(50.0)).abs() < 1e-12);
        assert!(setup.patch_start_s > 1.0e8, "absent patch sits far away");
        assert!(setup.friction_zones.is_empty());
    }

    #[test]
    fn roundtrip_render_parse_is_identity() {
        let doc = ScenarioDoc::parse(MINIMAL).unwrap();
        let rendered = doc.render();
        let reparsed = ScenarioDoc::parse(&rendered).expect("rendered text parses");
        assert_eq!(doc, reparsed);
    }

    #[test]
    fn builtin_catalog_roundtrips() {
        for (file, src) in BUILTIN_SOURCES {
            let doc = ScenarioDoc::parse(src).unwrap_or_else(|e| panic!("{file}: {e}"));
            let reparsed = ScenarioDoc::parse(&doc.render()).expect("rendered builtin parses");
            assert_eq!(doc, reparsed, "{file} round-trips");
        }
    }

    #[test]
    fn catalog_digest_is_stable_and_content_sensitive() {
        let a = ScenarioCatalog::builtin().unwrap();
        let b = ScenarioCatalog::builtin().unwrap();
        assert_eq!(a.digest(), b.digest(), "digest is deterministic");
        let mut swapped = ScenarioCatalog::builtin().unwrap();
        swapped.docs[4] = ScenarioDoc::parse(MINIMAL).unwrap();
        assert_ne!(a.digest(), swapped.digest(), "digest tracks document content");
    }

    #[test]
    fn errors_carry_line_numbers() {
        let bad = "[scenario]\nname = \"x\"\nego_start_s = 1.0\nego_speed = oops\n";
        let err = ScenarioDoc::parse(bad).unwrap_err();
        assert_eq!(err.line, 4);
        assert!(err.message.contains("expected a number"), "{}", err.message);
    }

    #[test]
    fn duplicate_key_rejected() {
        let bad = "[scenario]\nname = \"x\"\nname = \"y\"\n";
        let err = ScenarioDoc::parse(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("duplicate key"));
    }

    #[test]
    fn unknown_section_rejected() {
        let err = ScenarioDoc::parse("[wat]\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown section"));
    }

    #[test]
    fn unknown_function_rejected() {
        let bad = "[scenario]\nname = \"x\"\nego_start_s = \"rand(1.0)\"\n";
        let err = ScenarioDoc::parse(bad).unwrap_err();
        assert_eq!(err.line, 3);
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn deep_nesting_rejected_without_panic() {
        let src = format!(
            "[scenario]\nname = \"x\"\nego_start_s = \"{}1.0{}\"\n",
            "(".repeat(500),
            ")".repeat(500)
        );
        let err = ScenarioDoc::parse(&src).unwrap_err();
        assert!(err.message.contains("deeply nested"));
    }

    #[test]
    fn reserved_variable_names_rejected() {
        let bad = format!("{MINIMAL}\n[vars]\ngap = 1.0\n");
        let err = ScenarioDoc::parse(&bad).unwrap_err();
        assert!(err.message.contains("reserved"));
    }

    #[test]
    fn expression_draws_delegate_to_rng() {
        let src = MINIMAL.replace("speed = \"mph(30.0)\"", "speed = \"mph(30.0) + gauss(0.1)\"");
        let doc = ScenarioDoc::parse(&src).unwrap();
        let mut a = DeterministicRng::from_seed(9);
        let mut b = DeterministicRng::from_seed(9);
        let expected = mph(30.0) + b.gaussian(0.1);
        let setup = doc
            .compile(ScenarioId::S1, InitialPosition::Near, &mut a)
            .unwrap();
        assert_eq!(setup.npcs[0].state().v, expected);
    }

    #[test]
    fn segment_friction_becomes_zones() {
        let src = r#"
[scenario]
name = "icy"
ego_start_s = 0.0
ego_speed = "mph(50.0)"

[road]
kind = "segments"

[[road.segment]]
length = 500.0

[[road.segment]]
length = 200.0
radius = 450.0
friction = 0.5

[[npc]]
s = 80.0
d = 0.0
speed = "mph(30.0)"

[[friction]]
start_s = 900.0
end_s = 950.0
scale = 0.25
"#;
        let doc = ScenarioDoc::parse(src).unwrap();
        let mut rng = DeterministicRng::from_seed(1);
        let setup = doc
            .compile(ScenarioId::S1, InitialPosition::Near, &mut rng)
            .unwrap();
        assert_eq!(setup.friction_zones.len(), 2);
        assert_eq!(setup.friction_zones[0].start_s, 500.0);
        assert_eq!(setup.friction_zones[0].end_s, 700.0);
        assert_eq!(setup.friction_zones[1].scale, 0.25);
        assert!((setup.road.total_length() - 700.0).abs() < 1e-9);
    }
}
