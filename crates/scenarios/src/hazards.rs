//! Hazard (H1/H2) and accident (A1/A2) detection.

use adas_simulator::World;
use serde::{Deserialize, Serialize};

/// The two accident classes of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccidentKind {
    /// A1: forward collision with the lead vehicle.
    ForwardCollision,
    /// A2: driving out of the lane, or colliding with side vehicles.
    LaneViolation,
}

impl AccidentKind {
    /// Table label ("A1"/"A2").
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            AccidentKind::ForwardCollision => "A1",
            AccidentKind::LaneViolation => "A2",
        }
    }
}

impl std::fmt::Display for AccidentKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Hazard thresholds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HazardConfig {
    /// H1 fires when the true gap drops below this, metres (the paper's
    /// "violating the safety distance"; one vehicle length).
    pub h1_distance: f64,
    /// H1 also fires when the true TTC drops below this, seconds.
    pub h1_ttc: f64,
    /// H2 fires when the edge-to-lane-line distance drops below this,
    /// metres (the paper uses 0.1 m).
    pub h2_line_distance: f64,
}

impl Default for HazardConfig {
    fn default() -> Self {
        Self {
            h1_distance: 4.9,
            h1_ttc: 0.9,
            h2_line_distance: 0.1,
        }
    }
}

/// Current hazard/accident status for one step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct HazardSnapshot {
    /// H1 active this step.
    pub h1: bool,
    /// H2 active this step.
    pub h2: bool,
    /// Accident latched (first one wins).
    pub accident: Option<AccidentKind>,
}

/// Stateful monitor: latches first-occurrence times.
#[derive(Debug, Clone, Default)]
pub struct HazardMonitor {
    config: HazardConfig,
    first_h1: Option<f64>,
    first_h2: Option<f64>,
    accident: Option<(f64, AccidentKind)>,
}

impl HazardMonitor {
    /// Creates a monitor.
    #[must_use]
    pub fn new(config: HazardConfig) -> Self {
        Self {
            config,
            ..Self::default()
        }
    }

    /// First H1 time, if any.
    #[must_use]
    pub fn first_h1(&self) -> Option<f64> {
        self.first_h1
    }

    /// First H2 time, if any.
    #[must_use]
    pub fn first_h2(&self) -> Option<f64> {
        self.first_h2
    }

    /// The latched accident (time, kind), if any.
    #[must_use]
    pub fn accident(&self) -> Option<(f64, AccidentKind)> {
        self.accident
    }

    /// True when any hazard was ever observed.
    #[must_use]
    pub fn any_hazard(&self) -> bool {
        self.first_h1.is_some() || self.first_h2.is_some()
    }

    /// Evaluates the detectors against the world after a step.
    pub fn update(&mut self, world: &World) -> HazardSnapshot {
        let cfg = self.config;
        let t = world.time();

        let h1 = world.lead_observation().is_some_and(|obs| {
            obs.distance < cfg.h1_distance || obs.ttc() < cfg.h1_ttc
        });
        if h1 && self.first_h1.is_none() {
            self.first_h1 = Some(t);
        }

        let h2 = world.ego_lane_line_distance() < cfg.h2_line_distance;
        if h2 && self.first_h2.is_none() {
            self.first_h2 = Some(t);
        }

        if self.accident.is_none() {
            if let Some(hit) = world.collision() {
                let kind = if hit.longitudinal {
                    AccidentKind::ForwardCollision
                } else {
                    AccidentKind::LaneViolation
                };
                self.accident = Some((hit.time, kind));
            } else if let Some(dep) = world.lane_departure() {
                self.accident = Some((dep.time, AccidentKind::LaneViolation));
            }
        }

        HazardSnapshot {
            h1,
            h2,
            accident: self.accident.map(|(_, k)| k),
        }
    }

    /// Resets latched state (new run).
    pub fn reset(&mut self) {
        *self = Self::new(self.config);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_simulator::{
        Npc, NpcPlan, RoadBuilder, VehicleCommand, VehicleParams, World, WorldConfig,
    };

    fn world() -> World {
        let road = RoadBuilder::straight_highway(3000.0).build();
        World::new(WorldConfig::default(), road)
    }

    #[test]
    fn no_hazard_in_normal_following() {
        let mut w = world();
        w.spawn_ego(0.0, 13.0);
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            40.0,
            0.0,
            13.0,
            NpcPlan::cruise(),
        ));
        let mut m = HazardMonitor::default();
        for _ in 0..200 {
            w.step(VehicleCommand::coast());
            let snap = m.update(&w);
            assert!(!snap.h1 && !snap.h2);
        }
        assert!(!m.any_hazard());
    }

    #[test]
    fn h1_on_close_gap() {
        let mut w = world();
        w.spawn_ego(0.0, 15.0);
        // Centers 9 m apart → gap ≈ 4.1 m < 4.9 m.
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            9.0,
            0.0,
            15.0,
            NpcPlan::cruise(),
        ));
        let mut m = HazardMonitor::default();
        w.step(VehicleCommand::coast());
        let snap = m.update(&w);
        assert!(snap.h1);
        assert!(m.first_h1().is_some());
    }

    #[test]
    fn h2_near_lane_line() {
        let mut w = world();
        w.spawn_ego(0.0, 20.0);
        let mut m = HazardMonitor::default();
        // Drift until close to the line.
        for _ in 0..2000 {
            w.step(VehicleCommand {
                gas: 0.1,
                brake: 0.0,
                steer: 0.02,
            });
            let _ = m.update(&w);
            if m.first_h2().is_some() {
                break;
            }
        }
        assert!(m.first_h2().is_some());
    }

    #[test]
    fn forward_collision_is_a1() {
        let mut w = world();
        w.spawn_ego(0.0, 25.0);
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            30.0,
            0.0,
            0.0,
            NpcPlan::cruise(),
        ));
        let mut m = HazardMonitor::default();
        for _ in 0..600 {
            w.step(VehicleCommand {
                gas: 0.5,
                ..VehicleCommand::default()
            });
            let _ = m.update(&w);
            if m.accident().is_some() {
                break;
            }
        }
        let (t, kind) = m.accident().expect("collision");
        assert_eq!(kind, AccidentKind::ForwardCollision);
        assert!(t > 0.0);
    }

    #[test]
    fn lane_departure_is_a2() {
        let mut w = world();
        w.spawn_ego(0.0, 22.0);
        let mut m = HazardMonitor::default();
        for _ in 0..2000 {
            w.step(VehicleCommand {
                gas: 0.2,
                brake: 0.0,
                steer: 0.08,
            });
            let _ = m.update(&w);
            if m.accident().is_some() {
                break;
            }
        }
        assert_eq!(m.accident().unwrap().1, AccidentKind::LaneViolation);
    }

    #[test]
    fn first_accident_latched() {
        let mut w = world();
        w.spawn_ego(0.0, 25.0);
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            20.0,
            0.0,
            0.0,
            NpcPlan::cruise(),
        ));
        let mut m = HazardMonitor::default();
        for _ in 0..1000 {
            w.step(VehicleCommand {
                gas: 0.6,
                brake: 0.0,
                steer: 0.05,
            });
            let _ = m.update(&w);
        }
        let (t, _) = m.accident().expect("something happened");
        // Accident time does not move afterwards.
        let again = m.accident().unwrap().0;
        assert_eq!(t, again);
    }

    #[test]
    fn reset_clears_latches_simple() {
        let mut m = HazardMonitor::default();
        let mut w = world();
        w.spawn_ego(0.0, 15.0);
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            8.0,
            0.0,
            15.0,
            NpcPlan::cruise(),
        ));
        w.step(VehicleCommand::coast());
        let _ = m.update(&w);
        assert!(m.any_hazard());
        m.reset();
        assert!(!m.any_hazard());
    }
}

/// Property tests over randomized worlds: latching is monotone, `reset()`
/// is indistinguishable from fresh construction, and an accident is never
/// reported without its hazard precursor.
#[cfg(test)]
mod properties {
    use super::*;
    use adas_simulator::{
        Npc, NpcPlan, RoadBuilder, VehicleCommand, VehicleParams, World, WorldConfig,
    };
    use proptest::prelude::*;

    /// A randomized car-following world: ego behind one in-lane lead.
    fn lead_world(ego_v: f64, lead_gap: f64, lead_v: f64) -> World {
        let road = RoadBuilder::straight_highway(5000.0).build();
        let mut w = World::new(WorldConfig::default(), road);
        w.spawn_ego(0.0, ego_v);
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            lead_gap,
            0.0,
            lead_v,
            NpcPlan::cruise(),
        ));
        w
    }

    proptest! {
        /// Once a first-occurrence time latches it never moves, and it is
        /// never in the future of the step that set it.
        #[test]
        fn first_times_latch_monotonically(
            ego_v in 10.0f64..30.0,
            lead_gap in 15.0f64..120.0,
            lead_v in 0.0f64..10.0,
            gas in 0.3f64..1.0,
            steer in -0.05f64..0.05,
        ) {
            let mut w = lead_world(ego_v, lead_gap, lead_v);
            let mut m = HazardMonitor::default();
            let (mut h1, mut h2, mut acc) = (None, None, None);
            for _ in 0..500 {
                w.step(VehicleCommand { gas, brake: 0.0, steer });
                let _ = m.update(&w);
                for (latched, fresh) in [(&mut h1, m.first_h1()), (&mut h2, m.first_h2())] {
                    match (*latched, fresh) {
                        (None, Some(t)) => {
                            prop_assert!(t <= w.time() + 1e-9, "latched in the future");
                            *latched = Some(t);
                        }
                        (Some(t0), now) => prop_assert_eq!(now, Some(t0), "first time moved"),
                        (None, None) => {}
                    }
                }
                match (acc, m.accident()) {
                    (None, Some(a)) => acc = Some(a),
                    (Some(a0), now) => prop_assert_eq!(now, Some(a0), "accident relatched"),
                    (None, None) => {}
                }
            }
        }

        /// After `reset()` the monitor is observationally identical to a
        /// freshly constructed one: both report the same snapshots and
        /// first-occurrence times on any subsequent world history.
        #[test]
        fn reset_equals_fresh_construction(
            ego_v in 10.0f64..30.0,
            lead_gap in 10.0f64..80.0,
            lead_v in 0.0f64..10.0,
            gas in 0.2f64..1.0,
            prefix_steps in 0usize..400,
        ) {
            // Dirty a monitor with an arbitrary history, then reset.
            let mut recycled = HazardMonitor::default();
            let mut w = lead_world(ego_v, lead_gap, lead_v);
            for _ in 0..prefix_steps {
                w.step(VehicleCommand { gas: 1.0, brake: 0.0, steer: 0.03 });
                let _ = recycled.update(&w);
            }
            recycled.reset();
            prop_assert!(!recycled.any_hazard());
            prop_assert!(recycled.accident().is_none());

            let mut fresh = HazardMonitor::default();
            let mut w2 = lead_world(ego_v, lead_gap, lead_v);
            for _ in 0..300 {
                w2.step(VehicleCommand { gas, brake: 0.0, steer: 0.0 });
                let a = recycled.update(&w2);
                let b = fresh.update(&w2);
                prop_assert_eq!(a, b);
            }
            prop_assert_eq!(recycled.first_h1(), fresh.first_h1());
            prop_assert_eq!(recycled.first_h2(), fresh.first_h2());
            prop_assert_eq!(recycled.accident(), fresh.accident());
        }

        /// No accident without its hazard precursor: a forward collision
        /// (A1) implies H1 fired at or before the accident time; a lane
        /// violation (A2) from steady drift implies H2 did. Physics is
        /// continuous and the thresholds leave margin (4.9 m gap, 0.1 m
        /// line distance), so a per-step monitor cannot skip the hazard.
        #[test]
        fn accident_implies_preceding_hazard(
            ego_v in 15.0f64..30.0,
            lead_gap in 10.0f64..60.0,
            lead_v in 0.0f64..8.0,
            steer in -0.06f64..0.06,
        ) {
            let mut w = lead_world(ego_v, lead_gap, lead_v);
            let mut m = HazardMonitor::default();
            for _ in 0..3000 {
                w.step(VehicleCommand { gas: 0.8, brake: 0.0, steer });
                let _ = m.update(&w);
                if m.accident().is_some() {
                    break;
                }
            }
            if let Some((t_acc, kind)) = m.accident() {
                let precursor = match kind {
                    AccidentKind::ForwardCollision => m.first_h1(),
                    AccidentKind::LaneViolation => m.first_h2(),
                };
                prop_assert!(
                    precursor.is_some_and(|t| t <= t_acc + 1e-9),
                    "{kind} at t={t_acc} with precursor {precursor:?}"
                );
            }
        }
    }
}
