//! Driving scenarios, hazard/accident definitions, and run metrics.
//!
//! The six scenarios come from NHTSA's pre-crash scenario typology (paper
//! Section IV-A): the ego cruises at 50 mph and approaches the lead from an
//! initial distance of 60 m (straight highway) or 230 m (curvy highway).
//!
//! * **S1** — lead cruises at a constant 30 mph.
//! * **S2** — lead cruises at 30 mph, then accelerates to 40 mph.
//! * **S3** — lead cruises at 40 mph, then decelerates to 30 mph.
//! * **S4** — lead cruises at 30 mph, then suddenly brakes to a stop.
//! * **S5** — lead cruises at 30 mph; another vehicle cuts in from the
//!   neighbouring lane.
//! * **S6** — two leads cruise in-lane; the closer one changes lanes away.
//!
//! Hazards and accidents (Section IV-C):
//!
//! * **A1** — forward collision with the lead vehicle.
//! * **A2** — driving out of the lane or colliding with side vehicles.
//! * **H1** — safety-distance violation (may develop into A1).
//! * **H2** — ego within 0.1 m of a lane line (may develop into A2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dsl;
pub mod hazards;
pub mod metrics;
pub mod scenario;

pub use dsl::{ScenarioCatalog, ScenarioDoc, ScnError};
pub use hazards::{AccidentKind, HazardConfig, HazardMonitor, HazardSnapshot};
pub use metrics::{RunMetrics, RunRecord};
pub use scenario::{InitialPosition, ScenarioId, ScenarioSetup};
