//! Per-run metric aggregation.
//!
//! Collects, while a run executes, every quantity the paper's tables report:
//! minimum TTC and the FCW threshold at that moment (Table IV), the hardest
//! brake command, the stable following distance, the minimum distance to
//! lane lines (Table V), hazard/accident outcomes, and
//! intervention trigger times (Table VI's mitigation times / trigger rates).

use crate::hazards::AccidentKind;
use serde::{Deserialize, Serialize};

/// Streaming aggregator updated every simulation step.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    min_ttc: Option<f64>,
    t_fcw_at_min_ttc: f64,
    max_brake: f64,
    min_lane_line_distance: Option<f64>,
    follow_sum: f64,
    follow_count: u64,
    steps: u64,
}

impl RunMetrics {
    /// A fresh aggregator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one step of ground truth into the aggregator.
    ///
    /// * `true_rd`/`closing` — the real gap and closing speed, if a lead
    ///   vehicle exists;
    /// * `t_fcw_now` — the AEBS's FCW horizon at the current ego speed;
    /// * `brake_cmd` — the brake fraction actually sent to the actuators;
    /// * `lane_line_distance` — edge-to-line distance, metres.
    pub fn step(
        &mut self,
        true_rd: Option<f64>,
        closing: Option<f64>,
        t_fcw_now: f64,
        brake_cmd: f64,
        lane_line_distance: f64,
    ) {
        self.steps += 1;
        if let (Some(rd), Some(cl)) = (true_rd, closing) {
            if cl > 1e-6 {
                let ttc = rd / cl;
                if self.min_ttc.is_none_or(|m| ttc < m) {
                    self.min_ttc = Some(ttc);
                    self.t_fcw_at_min_ttc = t_fcw_now;
                }
            }
            // "Stable following": closing nearly zero at a plausible gap.
            if cl.abs() < 1.0 && (5.0..80.0).contains(&rd) {
                self.follow_sum += rd;
                self.follow_count += 1;
            }
        }
        self.max_brake = self.max_brake.max(brake_cmd);
        if self
            .min_lane_line_distance
            .is_none_or(|m| lane_line_distance < m)
        {
            self.min_lane_line_distance = Some(lane_line_distance);
        }
    }

    /// Finalises the aggregates into a [`RunRecord`] skeleton; outcome and
    /// intervention fields are filled by the platform.
    #[must_use]
    pub fn finish(&self) -> RunRecord {
        RunRecord {
            min_ttc: self.min_ttc.unwrap_or(f64::INFINITY),
            t_fcw_at_min_ttc: self.t_fcw_at_min_ttc,
            max_brake: self.max_brake,
            avg_following_distance: if self.follow_count > 0 {
                self.follow_sum / self.follow_count as f64
            } else {
                f64::NAN
            },
            min_lane_line_distance: self.min_lane_line_distance.unwrap_or(f64::NAN),
            steps: self.steps,
            ..RunRecord::default()
        }
    }
}

/// The complete result of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunRecord {
    /// Minimum ground-truth TTC over the run, seconds.
    pub min_ttc: f64,
    /// FCW threshold at the minimum-TTC moment, seconds (Table IV's t_fcw).
    pub t_fcw_at_min_ttc: f64,
    /// Hardest brake actuator command over the run, fraction.
    pub max_brake: f64,
    /// Mean gap during stable following, metres (NaN when never stable).
    pub avg_following_distance: f64,
    /// Minimum edge-to-lane-line distance, metres.
    pub min_lane_line_distance: f64,
    /// Steps executed (runs end early on accidents).
    pub steps: u64,
    /// First H1 hazard time, seconds.
    pub h1_time: Option<f64>,
    /// First H2 hazard time, seconds.
    pub h2_time: Option<f64>,
    /// Accident, if one ended the run.
    pub accident: Option<AccidentKind>,
    /// Accident time, seconds.
    pub accident_time: Option<f64>,
    /// First fault activation time, seconds.
    pub fault_start: Option<f64>,
    /// First AEB braking activation time, seconds.
    pub aeb_trigger: Option<f64>,
    /// First driver longitudinal trigger condition time, seconds.
    pub driver_brake_trigger: Option<f64>,
    /// First driver lateral trigger condition time, seconds.
    pub driver_steer_trigger: Option<f64>,
    /// Whether the ML recovery mode ever activated.
    pub ml_activated: bool,
}

impl Default for RunRecord {
    fn default() -> Self {
        Self {
            min_ttc: f64::INFINITY,
            t_fcw_at_min_ttc: 0.0,
            max_brake: 0.0,
            avg_following_distance: f64::NAN,
            min_lane_line_distance: f64::NAN,
            steps: 0,
            h1_time: None,
            h2_time: None,
            accident: None,
            accident_time: None,
            fault_start: None,
            aeb_trigger: None,
            driver_brake_trigger: None,
            driver_steer_trigger: None,
            ml_activated: false,
        }
    }
}

impl RunRecord {
    /// True when any hazard occurred.
    #[must_use]
    pub fn hazard(&self) -> bool {
        self.h1_time.is_some() || self.h2_time.is_some()
    }

    /// True when no accident ended the run (the paper's "accident
    /// prevented" counting for attacked runs).
    #[must_use]
    pub fn prevented(&self) -> bool {
        self.accident.is_none()
    }

    /// Mitigation delay of an intervention: time from fault activation to
    /// the intervention's trigger condition, seconds. `None` when either
    /// never happened.
    #[must_use]
    pub fn mitigation_time(&self, trigger: Option<f64>) -> Option<f64> {
        match (self.fault_start, trigger) {
            (Some(f), Some(t)) if t >= f => Some(t - f),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracks_min_ttc_and_fcw_horizon() {
        let mut m = RunMetrics::new();
        m.step(Some(50.0), Some(5.0), 7.0, 0.0, 0.8); // ttc 10
        m.step(Some(20.0), Some(8.0), 6.5, 0.1, 0.8); // ttc 2.5 ← min
        m.step(Some(30.0), Some(5.0), 7.1, 0.0, 0.8); // ttc 6
        let r = m.finish();
        assert!((r.min_ttc - 2.5).abs() < 1e-12);
        assert!((r.t_fcw_at_min_ttc - 6.5).abs() < 1e-12);
    }

    #[test]
    fn tracks_max_brake() {
        let mut m = RunMetrics::new();
        for b in [0.1, 0.7, 0.3] {
            m.step(None, None, 7.0, b, 0.8);
        }
        assert!((m.finish().max_brake - 0.7).abs() < 1e-12);
    }

    #[test]
    fn following_distance_only_counts_stable_phase() {
        let mut m = RunMetrics::new();
        // Fast closing: not stable.
        m.step(Some(70.0), Some(9.0), 7.0, 0.0, 0.8);
        // Stable at 28 m.
        for _ in 0..10 {
            m.step(Some(28.0), Some(0.2), 7.0, 0.0, 0.8);
        }
        let r = m.finish();
        assert!((r.avg_following_distance - 28.0).abs() < 1e-9);
    }

    #[test]
    fn no_following_is_nan() {
        let mut m = RunMetrics::new();
        m.step(None, None, 7.0, 0.0, 0.8);
        assert!(m.finish().avg_following_distance.is_nan());
    }

    #[test]
    fn min_lane_line_distance() {
        let mut m = RunMetrics::new();
        for d in [0.8, 0.4, 0.55] {
            m.step(None, None, 7.0, 0.0, d);
        }
        assert!((m.finish().min_lane_line_distance - 0.4).abs() < 1e-12);
    }

    #[test]
    fn opening_gap_never_sets_ttc() {
        let mut m = RunMetrics::new();
        m.step(Some(50.0), Some(-3.0), 7.0, 0.0, 0.8);
        assert!(m.finish().min_ttc.is_infinite());
    }

    #[test]
    fn record_prevention_logic() {
        let mut r = RunRecord::default();
        assert!(r.prevented());
        r.accident = Some(AccidentKind::ForwardCollision);
        assert!(!r.prevented());
    }

    #[test]
    fn mitigation_time_requires_both_events() {
        let mut r = RunRecord::default();
        assert_eq!(r.mitigation_time(Some(5.0)), None);
        r.fault_start = Some(3.0);
        assert_eq!(r.mitigation_time(Some(5.0)), Some(2.0));
        assert_eq!(r.mitigation_time(None), None);
        // Trigger before the fault (benign-phase trigger) does not count.
        assert_eq!(r.mitigation_time(Some(1.0)), None);
    }

    #[test]
    fn hazard_flag() {
        let mut r = RunRecord::default();
        assert!(!r.hazard());
        r.h2_time = Some(4.0);
        assert!(r.hazard());
    }
}
