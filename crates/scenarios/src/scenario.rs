//! Scenario construction: roads, spawn positions, NPC scripts.

use adas_simulator::{
    units::mph, DeterministicRng, FrictionZone, Npc, NpcBehavior, NpcPlan, NpcTrigger, Road,
    RoadBuilder, VehicleParams,
};
use serde::{Deserialize, Serialize};

/// The six NHTSA pre-crash scenarios of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ScenarioId {
    /// Lead cruises at a constant 30 mph.
    S1,
    /// Lead cruises at 30 mph then accelerates to 40 mph.
    S2,
    /// Lead cruises at 40 mph then decelerates to 30 mph.
    S3,
    /// Lead cruises at 30 mph then suddenly brakes to a stop.
    S4,
    /// Cut-in from the neighbouring lane.
    S5,
    /// The closer of two leads changes lanes away.
    S6,
}

impl ScenarioId {
    /// All scenarios in order.
    pub const ALL: [ScenarioId; 6] = [
        ScenarioId::S1,
        ScenarioId::S2,
        ScenarioId::S3,
        ScenarioId::S4,
        ScenarioId::S5,
        ScenarioId::S6,
    ];

    /// Stable index 0–5.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            ScenarioId::S1 => 0,
            ScenarioId::S2 => 1,
            ScenarioId::S3 => 2,
            ScenarioId::S4 => 3,
            ScenarioId::S5 => 4,
            ScenarioId::S6 => 5,
        }
    }

    /// Label used in the paper's tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ScenarioId::S1 => "S1",
            ScenarioId::S2 => "S2",
            ScenarioId::S3 => "S3",
            ScenarioId::S4 => "S4",
            ScenarioId::S5 => "S5",
            ScenarioId::S6 => "S6",
        }
    }

    /// One-line description.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            ScenarioId::S1 => "lead vehicle cruises at a constant 30 mph",
            ScenarioId::S2 => "lead cruises at 30 mph then accelerates to 40 mph",
            ScenarioId::S3 => "lead cruises at 40 mph then decelerates to 30 mph",
            ScenarioId::S4 => "lead cruises at 30 mph then suddenly brakes to a stop",
            ScenarioId::S5 => "another vehicle cuts in from the neighbouring lane",
            ScenarioId::S6 => "the closer of two leads changes lanes away",
        }
    }
}

impl std::fmt::Display for ScenarioId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Initial ego–lead separation; the paper pairs 60 m with a straight
/// highway and 230 m with a curvy one so the ego always catches up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InitialPosition {
    /// 60 m ahead, straight highway.
    Near,
    /// 230 m ahead, curvy highway.
    Far,
}

impl InitialPosition {
    /// Both positions in paper order.
    pub const ALL: [InitialPosition; 2] = [InitialPosition::Near, InitialPosition::Far];

    /// Initial center-to-center distance, metres.
    #[must_use]
    pub fn distance(self) -> f64 {
        match self {
            InitialPosition::Near => 60.0,
            InitialPosition::Far => 230.0,
        }
    }

    /// Stable index 0–1.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            InitialPosition::Near => 0,
            InitialPosition::Far => 1,
        }
    }

    /// Builds the road map this position is paired with.
    #[must_use]
    pub fn road(self) -> Road {
        match self {
            InitialPosition::Near => RoadBuilder::straight_highway(4_000.0).build(),
            InitialPosition::Far => RoadBuilder::curvy_highway(4_500.0).build(),
        }
    }
}

/// Everything needed to initialise a world for one run.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSetup {
    /// The scenario this was built from.
    pub id: ScenarioId,
    /// The position/road pairing.
    pub position: InitialPosition,
    /// The road to drive.
    pub road: Road,
    /// Ego spawn arc length, metres.
    pub ego_start_s: f64,
    /// Ego initial (and cruise set) speed, m/s.
    pub ego_speed: f64,
    /// Scripted vehicles to add.
    pub npcs: Vec<Npc>,
    /// Suggested arc length for the adversarial road patch: placed so the
    /// ego reaches it during its approach phase.
    pub patch_start_s: f64,
    /// Localised friction bands along the road (wet patches, icy bridge
    /// decks). Empty for the builtin S1–S6.
    pub friction_zones: Vec<FrictionZone>,
}

impl ScenarioSetup {
    /// Builds a runnable setup for `(scenario, position)`; `rng` provides
    /// the per-repetition jitter (spawn distance, speeds, event timing) that
    /// makes the paper's 10 repetitions differ.
    ///
    /// Setups come from the process-wide [`crate::dsl::ScenarioCatalog`]:
    /// the six golden `.scn` files by default (bit-identical to
    /// [`Self::build_hardcoded`]), or `ADAS_SCENARIO` overrides.
    #[must_use]
    pub fn build(id: ScenarioId, position: InitialPosition, rng: &mut DeterministicRng) -> Self {
        crate::dsl::ScenarioCatalog::global().build(id, position, rng)
    }

    /// The historical hard-coded constructor, retained as the reference
    /// the DSL catalog is differentially tested against.
    #[must_use]
    pub fn build_hardcoded(
        id: ScenarioId,
        position: InitialPosition,
        rng: &mut DeterministicRng,
    ) -> Self {
        let road = position.road();
        let ego_start_s = 10.0;
        let ego_speed = mph(50.0) + rng.gaussian(0.15);
        let gap_jitter = rng.gaussian(1.5);
        let lead_s = ego_start_s + position.distance() + gap_jitter;
        let v30 = mph(30.0) + rng.gaussian(0.1);
        let v40 = mph(40.0) + rng.gaussian(0.1);
        let event_time = 20.0 + rng.uniform(0.0, 10.0);
        let params = VehicleParams::sedan();

        let mut npcs = Vec::new();
        match id {
            ScenarioId::S1 => {
                npcs.push(Npc::new(params, lead_s, 0.0, v30, NpcPlan::cruise()));
            }
            ScenarioId::S2 => {
                let plan = NpcPlan::cruise().then(
                    NpcTrigger::AtTime(event_time),
                    NpcBehavior::SetSpeed {
                        target: v40,
                        rate: 1.5,
                    },
                );
                npcs.push(Npc::new(params, lead_s, 0.0, v30, plan));
            }
            ScenarioId::S3 => {
                let plan = NpcPlan::cruise().then(
                    NpcTrigger::AtTime(event_time),
                    NpcBehavior::SetSpeed {
                        target: v30,
                        rate: 1.5,
                    },
                );
                npcs.push(Npc::new(params, lead_s, 0.0, v40, plan));
            }
            ScenarioId::S4 => {
                // Sudden stop while the ego is still closing in — the paper
                // observes collisions here even without an attack,
                // particularly when the lead brakes abruptly on a curve.
                let plan = NpcPlan::cruise().then(
                    NpcTrigger::GapToEgoBelow(52.0 + rng.uniform(-6.0, 6.0)),
                    NpcBehavior::Stop {
                        decel: 9.5 + rng.uniform(-0.3, 0.3),
                    },
                );
                npcs.push(Npc::new(params, lead_s, 0.0, v30, plan));
            }
            ScenarioId::S5 => {
                npcs.push(Npc::new(params, lead_s, 0.0, v30, NpcPlan::cruise()));
                // Cut-in vehicle: adjacent lane, slightly ahead of the ego,
                // slower — it merges once the ego gets close.
                let lane_w = road.lane_width();
                let cut_plan = NpcPlan::cruise().then(
                    NpcTrigger::GapToEgoBelow(26.0 + rng.uniform(-3.0, 3.0)),
                    NpcBehavior::MoveLateral {
                        target_d: 0.0,
                        duration: 2.8 + rng.uniform(-0.4, 0.4),
                    },
                );
                npcs.push(Npc::new(
                    params,
                    lead_s - position.distance() * 0.5,
                    lane_w,
                    mph(35.0) + rng.gaussian(0.1),
                    cut_plan,
                ));
            }
            ScenarioId::S6 => {
                // Farther lead (becomes the lead after the closer one leaves).
                npcs.push(Npc::new(
                    params,
                    lead_s + 28.0,
                    0.0,
                    v30,
                    NpcPlan::cruise(),
                ));
                // Closer lead changes into the adjacent lane as the ego nears.
                let lane_w = road.lane_width();
                let away_plan = NpcPlan::cruise().then(
                    NpcTrigger::GapToEgoBelow(38.0 + rng.uniform(-3.0, 3.0)),
                    NpcBehavior::MoveLateral {
                        target_d: lane_w,
                        duration: 3.0,
                    },
                );
                npcs.push(Npc::new(params, lead_s, 0.0, v30, away_plan));
            }
        }

        // The road patch sits where the ego crosses it towards the end of
        // its approach to the lead — the attacker knows the victim's
        // driving path (threat model), and a patch far from any traffic
        // would be trivially inconsequential. With the 230 m initial gap
        // the catch-up happens correspondingly later.
        let patch_offset = match position {
            InitialPosition::Near => 240.0,
            InitialPosition::Far => 500.0,
        };
        let patch_start_s = ego_start_s + patch_offset + rng.uniform(0.0, 40.0);

        Self {
            id,
            position,
            road,
            ego_start_s,
            ego_speed,
            npcs,
            patch_start_s,
            friction_zones: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> DeterministicRng {
        DeterministicRng::from_seed(11)
    }

    #[test]
    fn all_scenarios_build_for_both_positions() {
        for id in ScenarioId::ALL {
            for pos in InitialPosition::ALL {
                let setup = ScenarioSetup::build(id, pos, &mut rng());
                assert!(!setup.npcs.is_empty(), "{id} {pos:?} has traffic");
                assert!(setup.ego_speed > mph(45.0));
                assert!(setup.patch_start_s > setup.ego_start_s);
            }
        }
    }

    #[test]
    fn initial_distance_matches_position() {
        for pos in InitialPosition::ALL {
            let setup = ScenarioSetup::build(ScenarioId::S1, pos, &mut rng());
            let lead_s = setup.npcs[0].state().s;
            let gap = lead_s - setup.ego_start_s;
            assert!(
                (gap - pos.distance()).abs() < 6.0,
                "{pos:?}: gap {gap} vs {}",
                pos.distance()
            );
        }
    }

    #[test]
    fn s5_has_adjacent_lane_vehicle() {
        let setup = ScenarioSetup::build(ScenarioId::S5, InitialPosition::Near, &mut rng());
        assert_eq!(setup.npcs.len(), 2);
        assert!((setup.npcs[1].state().d - 3.5).abs() < 1e-9);
    }

    #[test]
    fn s6_has_two_in_lane_vehicles() {
        let setup = ScenarioSetup::build(ScenarioId::S6, InitialPosition::Near, &mut rng());
        assert_eq!(setup.npcs.len(), 2);
        assert!(setup.npcs.iter().all(|n| n.state().d.abs() < 1e-9));
        assert!(setup.npcs[0].state().s > setup.npcs[1].state().s);
    }

    #[test]
    fn s3_lead_starts_faster() {
        let s3 = ScenarioSetup::build(ScenarioId::S3, InitialPosition::Near, &mut rng());
        let s1 = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng());
        assert!(s3.npcs[0].state().v > s1.npcs[0].state().v + 3.0);
    }

    #[test]
    fn repetitions_differ_but_are_reproducible() {
        let mut r1 = DeterministicRng::for_run(1, 0, 0, 0);
        let mut r2 = DeterministicRng::for_run(1, 0, 0, 1);
        let a = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut r1);
        let b = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut r2);
        assert_ne!(a.npcs[0].state().s, b.npcs[0].state().s);

        let mut r1_again = DeterministicRng::for_run(1, 0, 0, 0);
        let a_again = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut r1_again);
        assert_eq!(a.npcs[0].state().s, a_again.npcs[0].state().s);
    }

    #[test]
    fn far_position_uses_curvy_road() {
        let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Far, &mut rng());
        let has_curve = setup.road.segments().any(|s| s.curvature != 0.0);
        assert!(has_curve);
        let near = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng());
        assert!(near.road.segments().all(|s| s.curvature == 0.0));
    }

    #[test]
    fn labels_and_indices_are_stable() {
        assert_eq!(ScenarioId::S4.label(), "S4");
        assert_eq!(ScenarioId::S4.index(), 3);
        assert_eq!(InitialPosition::Far.index(), 1);
        assert_eq!(format!("{}", ScenarioId::S2), "S2");
    }
}
