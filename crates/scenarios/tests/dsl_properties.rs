//! Property tests for the `.scn` parser: rendering a synthesised document
//! and parsing it back is the identity, compilation is deterministic in
//! the RNG seed, and arbitrarily mutated input produces a typed
//! [`ScnError`] with a plausible line number — never a panic.

use adas_scenarios::dsl::{
    BehaviorSpec, ExprField, NpcSpec, PhaseSpec, RoadKind, RoadSpec, ScenarioDoc, SegmentSpec,
    TriggerKind, ZoneSpec,
};
use adas_scenarios::{InitialPosition, ScenarioId};
use adas_simulator::DeterministicRng;
use proptest::prelude::*;

// --- generators -----------------------------------------------------------

/// A literal in a range that `{:?}` never renders in scientific notation.
fn num(rng: &mut TestRng, lo: f64, hi: f64) -> f64 {
    let v = lo + rng.unit_f64() * (hi - lo);
    (v * 100.0).round() / 100.0
}

fn literal(rng: &mut TestRng, lo: f64, hi: f64) -> ExprField {
    ExprField::number(num(rng, lo, hi))
}

/// A quoted expression drawing on the builtin functions and any
/// previously declared `[vars]` names.
fn expression(rng: &mut TestRng, vars: &[(String, ExprField)], lo: f64, hi: f64) -> ExprField {
    let (a, b) = (num(rng, lo, hi), num(rng, 0.05, 2.0));
    let src = match rng.usize_in(0, if vars.is_empty() { 4 } else { 6 }) {
        0 => format!("mph({a:?}) + gauss({b:?})"),
        1 => format!("pos({a:?}, {:?})", a + num(rng, 1.0, 40.0)),
        2 => format!("{a:?} + uniform(-{b:?}, {b:?})"),
        3 => format!("({a:?} + {b:?}) * 2.0 - {b:?}"),
        4 => format!("{} + {a:?}", vars[rng.usize_in(0, vars.len())].0),
        _ => format!("0.0 - ({} / 2.0)", vars[rng.usize_in(0, vars.len())].0),
    };
    ExprField::expression(&src).expect("generator emits valid expressions")
}

fn field(rng: &mut TestRng, vars: &[(String, ExprField)], lo: f64, hi: f64) -> ExprField {
    if rng.next_u64() & 1 == 0 {
        literal(rng, lo, hi)
    } else {
        expression(rng, vars, lo, hi)
    }
}

fn road(rng: &mut TestRng) -> RoadSpec {
    match rng.usize_in(0, 4) {
        0 => RoadSpec {
            kind: RoadKind::Position,
            length: None,
            lane_width: None,
            lane_count: None,
            segments: Vec::new(),
        },
        1 => RoadSpec {
            kind: RoadKind::Straight,
            length: Some(num(rng, 1_000.0, 4_000.0)),
            lane_width: None,
            lane_count: None,
            segments: Vec::new(),
        },
        2 => RoadSpec {
            kind: RoadKind::Curvy,
            length: Some(num(rng, 1_000.0, 4_000.0)),
            lane_width: None,
            lane_count: None,
            segments: Vec::new(),
        },
        _ => {
            let segments = (0..rng.usize_in(1, 4))
                .map(|_| {
                    let (radius, curvature) = match rng.usize_in(0, 3) {
                        0 => (Some(num(rng, 300.0, 900.0)), None),
                        1 => (None, Some(num(rng, 0.1, 0.9) / 100.0)),
                        _ => (None, None),
                    };
                    SegmentSpec {
                        length: num(rng, 150.0, 900.0),
                        radius,
                        curvature,
                        friction: (rng.next_u64() & 1 == 0).then(|| num(rng, 0.4, 1.0)),
                    }
                })
                .collect();
            RoadSpec {
                kind: RoadKind::Segments,
                length: None,
                lane_width: (rng.next_u64() & 1 == 0).then(|| num(rng, 3.0, 4.0)),
                lane_count: (rng.next_u64() & 1 == 0).then(|| 2 + (rng.next_u64() % 3) as u8),
                segments,
            }
        }
    }
}

fn phase(rng: &mut TestRng, vars: &[(String, ExprField)]) -> PhaseSpec {
    let (trigger, threshold) = match rng.usize_in(0, 3) {
        0 => (TriggerKind::Immediately, None),
        1 => (TriggerKind::AtTime, Some(field(rng, vars, 5.0, 40.0))),
        _ => (TriggerKind::GapBelow, Some(field(rng, vars, 10.0, 60.0))),
    };
    let behavior = match rng.usize_in(0, 3) {
        0 => BehaviorSpec::SetSpeed {
            target: field(rng, vars, 5.0, 30.0),
            rate: literal(rng, 0.5, 4.0),
        },
        1 => BehaviorSpec::Stop {
            decel: literal(rng, 3.0, 9.0),
        },
        _ => BehaviorSpec::MoveLateral {
            target_d: literal(rng, -3.6, 3.6),
            duration: literal(rng, 1.0, 6.0),
        },
    };
    PhaseSpec {
        trigger,
        threshold,
        behavior,
    }
}

fn document(rng: &mut TestRng) -> ScenarioDoc {
    let vars: Vec<(String, ExprField)> = (0..rng.usize_in(0, 4))
        .map(|i| (format!("v{i}"), ExprField::number(num(rng, 1.0, 300.0))))
        .collect();
    let npcs = (0..rng.usize_in(1, 4))
        .map(|_| NpcSpec {
            s: field(rng, &vars, 60.0, 400.0),
            d: literal(rng, -3.6, 3.6),
            speed: field(rng, &vars, 8.0, 30.0),
            phases: (0..rng.usize_in(0, 3)).map(|_| phase(rng, &vars)).collect(),
        })
        .collect();
    let zones = (0..rng.usize_in(0, 3))
        .map(|_| {
            let start = num(rng, 100.0, 2_000.0);
            ZoneSpec {
                start_s: start,
                end_s: start + num(rng, 20.0, 300.0),
                scale: num(rng, 0.3, 1.0),
            }
        })
        .collect();
    ScenarioDoc {
        name: format!("prop-{}", rng.next_u64() % 10_000),
        summary: if rng.next_u64() & 1 == 0 {
            String::new()
        } else {
            "synthesised by the property generator".to_owned()
        },
        road: road(rng),
        ego_start_s: literal(rng, 5.0, 60.0),
        ego_speed: field(rng, &vars, 15.0, 32.0),
        vars,
        npcs,
        patch_start_s: (rng.next_u64() & 1 == 0).then(|| field(rng, &[], 200.0, 600.0)),
        zones,
    }
}

/// Mutates rendered text to (probably) break it while staying valid UTF-8.
fn mutate(rng: &mut TestRng, text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    match rng.usize_in(0, 6) {
        // Truncate at an arbitrary character boundary.
        0 => {
            let cut = rng.usize_in(0, text.len() + 1);
            text.char_indices()
                .map(|(i, _)| i)
                .take_while(|&i| i <= cut)
                .last()
                .map_or(String::new(), |i| text[..i].to_owned())
        }
        // Delete one line.
        1 => {
            let victim = rng.usize_in(0, lines.len());
            lines
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != victim)
                .map(|(_, l)| format!("{l}\n"))
                .collect()
        }
        // Duplicate one line (duplicate keys must be rejected, not race).
        2 => {
            let victim = rng.usize_in(0, lines.len());
            lines
                .iter()
                .enumerate()
                .flat_map(|(i, l)| {
                    let n = if i == victim { 2 } else { 1 };
                    std::iter::repeat_n(format!("{l}\n"), n)
                })
                .collect()
        }
        // Replace one line with junk drawn from the grammar's alphabet.
        3 => {
            let junk = ["[", "]]", "= 1.0", "threshold =", "s = \"gauss(\"", "🚗 = 3"];
            let victim = rng.usize_in(0, lines.len());
            let junk = junk[rng.usize_in(0, junk.len())];
            lines
                .iter()
                .enumerate()
                .map(|(i, l)| format!("{}\n", if i == victim { junk } else { l }))
                .collect()
        }
        // Insert a bogus section or key.
        4 => {
            let extra = [
                "[[npc.phase]]",
                "[nonsense]",
                "kind = \"mobius\"",
                "speed = \"v99 + 1.0\"",
            ];
            let at = rng.usize_in(0, lines.len() + 1);
            let extra = extra[rng.usize_in(0, extra.len())];
            let mut out = String::new();
            for (i, l) in lines.iter().enumerate() {
                if i == at {
                    out.push_str(extra);
                    out.push('\n');
                }
                out.push_str(l);
                out.push('\n');
            }
            if at == lines.len() {
                out.push_str(extra);
                out.push('\n');
            }
            out
        }
        // Flip one character to a structural one.
        _ => {
            let chars: Vec<char> = text.chars().collect();
            let victim = rng.usize_in(0, chars.len());
            let structural = ['"', '=', '[', ']', '(', ',', '#'];
            chars
                .iter()
                .enumerate()
                .map(|(i, &c)| {
                    if i == victim {
                        structural[rng.usize_in(0, structural.len())]
                    } else {
                        c
                    }
                })
                .collect()
        }
    }
}

// --- properties -----------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    #[test]
    fn render_then_parse_is_the_identity(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("roundtrip-{seed}"));
        let doc = document(&mut rng);
        let rendered = doc.render();
        let parsed = ScenarioDoc::parse(&rendered)
            .unwrap_or_else(|e| panic!("generated doc must parse: {e}\n{rendered}"));
        prop_assert_eq!(&parsed, &doc);
        // And rendering is a fixed point: parse ∘ render converges after
        // one pass, so stored documents never churn.
        prop_assert_eq!(parsed.render(), rendered);
    }

    #[test]
    fn compilation_is_deterministic_in_the_seed(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("compile-{seed}"));
        let doc = document(&mut rng);
        let scenario = ScenarioId::ALL[rng.usize_in(0, ScenarioId::ALL.len())];
        let position = InitialPosition::ALL[rng.usize_in(0, InitialPosition::ALL.len())];
        let mut rng_a = DeterministicRng::from_seed(seed);
        let mut rng_b = DeterministicRng::from_seed(seed);
        let a = doc.compile(scenario, position, &mut rng_a);
        let b = doc.compile(scenario, position, &mut rng_b);
        match (a, b) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a, b);
                // Draw counts must agree too, or batch lanes desync.
                prop_assert_eq!(
                    rng_a.uniform(0.0, 1.0).to_bits(),
                    rng_b.uniform(0.0, 1.0).to_bits()
                );
            }
            (Err(a), Err(b)) => prop_assert_eq!(a.to_string(), b.to_string()),
            (a, b) => prop_assert!(false, "non-deterministic compile: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn mutated_documents_error_with_line_numbers_and_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("mutate-{seed}"));
        let doc = document(&mut rng);
        let mut text = doc.render();
        for round in 0..rng.usize_in(1, 4) {
            let _ = round;
            text = mutate(&mut rng, &text);
        }
        match ScenarioDoc::parse(&text) {
            // Some mutations keep the document valid — that's fine, the
            // property under test is "typed error or success, no panic".
            Ok(_) => {}
            Err(e) => {
                let lines = text.lines().count();
                prop_assert!(
                    e.line <= lines + 1,
                    "error line {} out of range for a {}-line document: {e}",
                    e.line,
                    lines
                );
                prop_assert!(!e.message.is_empty(), "empty diagnostic");
                // The Display form carries the location for CLI surfaces.
                prop_assert!(e.to_string().contains("line"), "{e}");
            }
        }
    }
}
