//! Scenario scripts executed in the world: each of S1–S6 must produce the
//! traffic behaviour its NHTSA description demands.

use adas_scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use adas_simulator::{
    units::{mph, SIM_DT},
    DeterministicRng, VehicleCommand, World, WorldConfig,
};

/// Runs the scenario's traffic with a simple speed-holding ego so events
/// keyed to the ego's approach actually fire.
fn run_world(id: ScenarioId, seconds: f64) -> World {
    let mut rng = DeterministicRng::for_run(5, id.index() as u64, 0, 0);
    let setup = ScenarioSetup::build(id, InitialPosition::Near, &mut rng);
    let mut world = World::new(WorldConfig::default(), setup.road.clone());
    world.spawn_ego(setup.ego_start_s, setup.ego_speed);
    for npc in &setup.npcs {
        world.add_npc(npc.clone());
    }
    let steps = (seconds / SIM_DT) as usize;
    for _ in 0..steps {
        // Hold ~ lead speed once close, else cruise: a crude but stable ego.
        let cmd = match world.lead_observation() {
            Some(obs) if obs.distance < 30.0 => VehicleCommand {
                gas: 0.0,
                brake: 0.3,
                steer: 0.0,
            },
            _ => VehicleCommand {
                gas: 0.35,
                brake: 0.0,
                steer: 0.0,
            },
        };
        world.step(cmd);
        if world.collision().is_some() {
            break;
        }
    }
    world
}

#[test]
fn s1_lead_holds_thirty_mph() {
    let world = run_world(ScenarioId::S1, 40.0);
    let v = world.npcs()[0].state().v;
    assert!((v - mph(30.0)).abs() < 1.0, "lead speed {v}");
}

#[test]
fn s2_lead_accelerates_to_forty() {
    let world = run_world(ScenarioId::S2, 60.0);
    let v = world.npcs()[0].state().v;
    assert!((v - mph(40.0)).abs() < 1.5, "lead speed {v}");
}

#[test]
fn s3_lead_decelerates_to_thirty() {
    let world = run_world(ScenarioId::S3, 60.0);
    let v = world.npcs()[0].state().v;
    assert!((v - mph(30.0)).abs() < 1.5, "lead speed {v}");
}

#[test]
fn s4_lead_stops_when_ego_approaches() {
    let world = run_world(ScenarioId::S4, 60.0);
    let v = world.npcs()[0].state().v;
    assert!(v < 0.5, "lead must be stopped, v={v}");
}

#[test]
fn s5_cut_in_vehicle_enters_ego_lane() {
    let world = run_world(ScenarioId::S5, 60.0);
    // NPC 1 is the cut-in vehicle; it must end near the ego lane center.
    let d = world.npcs()[1].state().d;
    assert!(d.abs() < 0.8, "cut-in lateral {d}");
}

#[test]
fn s6_closer_lead_vacates_the_lane() {
    let world = run_world(ScenarioId::S6, 60.0);
    // NPC 1 is the closer lead; it must have moved a full lane away.
    let d = world.npcs()[1].state().d;
    assert!((d - 3.5).abs() < 0.8, "lane-change lateral {d}");
    // And NPC 0 (the farther lead) stays in lane.
    assert!(world.npcs()[0].state().d.abs() < 0.5);
}

#[test]
fn far_position_catches_up_eventually() {
    // The paper picked 230 m so the ego catches the lead on curvy roads.
    let mut rng = DeterministicRng::for_run(5, 0, 1, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Far, &mut rng);
    let mut world = World::new(WorldConfig::default(), setup.road.clone());
    world.spawn_ego(setup.ego_start_s, setup.ego_speed);
    for npc in &setup.npcs {
        world.add_npc(npc.clone());
    }
    let mut caught_up = false;
    for _ in 0..9000 {
        world.step(VehicleCommand {
            gas: 0.35,
            brake: 0.0,
            steer: (2.7 * world.road().curvature_at(world.ego().state().s)).atan(),
        });
        if world
            .lead_observation()
            .is_some_and(|o| o.distance < 60.0)
        {
            caught_up = true;
            break;
        }
    }
    assert!(caught_up, "ego never caught the lead from 230 m");
}
