//! Every example scenario shipped under `scenarios/examples/` must parse,
//! render canonically (round-trip through the parser), and compile for
//! both spawn positions — the same checks `adas-scn-check` runs in CI.

use adas_scenarios::{InitialPosition, ScenarioDoc, ScenarioId};
use adas_simulator::DeterministicRng;
use std::path::{Path, PathBuf};

fn example_files() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../scenarios/examples");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "scn"))
        .collect();
    files.sort();
    files
}

#[test]
fn examples_exist() {
    assert!(
        example_files().len() >= 3,
        "scenarios/examples/ should ship at least the cut-in, platoon, and \
         merge examples"
    );
}

#[test]
fn every_example_parses_compiles_and_round_trips() {
    for path in example_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let doc = ScenarioDoc::parse(&text)
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Canonical render must parse back to the identical document.
        let rendered = doc.render();
        let reparsed = ScenarioDoc::parse(&rendered)
            .unwrap_or_else(|e| panic!("{}: render not reparseable: {e}", path.display()));
        assert_eq!(reparsed, doc, "{}: render/parse round trip drifted", path.display());
        // And the document must compile for both spawn positions.
        for position in InitialPosition::ALL {
            let mut rng = DeterministicRng::from_seed(7);
            let setup = doc
                .compile(ScenarioId::S1, position, &mut rng)
                .unwrap_or_else(|e| panic!("{}: {position:?}: {e}", path.display()));
            assert!(!setup.npcs.is_empty(), "{}: no traffic", path.display());
            assert!(setup.ego_speed > 0.0);
        }
    }
}

#[test]
fn examples_cover_the_advertised_features() {
    // The three shipped examples exist to demonstrate specific DSL
    // features; losing one silently would gut the documentation.
    let mut multi_npc = false;
    let mut multi_phase = false;
    let mut segment_friction = false;
    let mut standalone_zone = false;
    for path in example_files() {
        let text = std::fs::read_to_string(&path).expect("readable");
        let doc = ScenarioDoc::parse(&text).expect("parses");
        multi_npc |= doc.npcs.len() >= 3;
        multi_phase |= doc.npcs.iter().any(|n| n.phases.len() >= 2);
        segment_friction |= doc.road.segments.iter().any(|s| s.friction.is_some());
        standalone_zone |= !doc.zones.is_empty();
    }
    assert!(multi_npc, "no example with ≥3 NPCs");
    assert!(multi_phase, "no example with a multi-phase NPC script");
    assert!(segment_friction, "no example with per-segment friction");
    assert!(standalone_zone, "no example with a standalone friction zone");
}
