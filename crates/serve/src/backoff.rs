//! Retry backoff for queue-full rejections.
//!
//! The server's [`Response::Rejected`] carries a `retry_after_ms` hint;
//! hammering the socket the instant it elapses synchronises every bounced
//! client into lock-step retry storms. This module turns the hint into a
//! capped exponential schedule with *deterministic* jitter: the delay for
//! `(seed, attempt)` is a pure function, so tests can assert the exact
//! schedule and two clients with different seeds de-synchronise while a
//! re-run of the same client reproduces identical timing.
//!
//! [`Response::Rejected`]: crate::protocol::Response::Rejected

use adas_core::Fingerprint;

/// Ceiling on any single backoff delay.
pub const BACKOFF_CAP_MS: u64 = 10_000;

/// Default number of submission attempts before giving up.
pub const DEFAULT_ATTEMPTS: u32 = 8;

/// The delay before retry number `attempt` (0-based), honouring the
/// server's `retry_after_ms` hint: `hint · 2^attempt`, capped at
/// [`BACKOFF_CAP_MS`], then scaled into `[50 %, 100 %]` by a jitter drawn
/// deterministically from `(seed, attempt)`.
#[must_use]
pub fn delay_ms(retry_after_ms: u32, attempt: u32, seed: u64) -> u64 {
    let base = u64::from(retry_after_ms.max(1));
    let exp = base.saturating_mul(1u64 << attempt.min(16));
    let capped = exp.min(BACKOFF_CAP_MS);
    // 53 high-quality bits of the fingerprint → a unit fraction in [0, 1).
    let h = Fingerprint::new()
        .write_str("retry-backoff")
        .write_u64(seed)
        .write_u64(u64::from(attempt))
        .value();
    let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
    let jittered = capped as f64 * (0.5 + 0.5 * unit);
    (jittered as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_and_grows_to_the_cap() {
        let a: Vec<u64> = (0..10).map(|i| delay_ms(500, i, 42)).collect();
        let b: Vec<u64> = (0..10).map(|i| delay_ms(500, i, 42)).collect();
        assert_eq!(a, b, "same (seed, attempt) must give the same delay");
        // Every delay respects the jitter band of its capped exponential.
        for (i, &d) in a.iter().enumerate() {
            let capped = (500u64 << i.min(16)).min(BACKOFF_CAP_MS);
            assert!(d >= capped / 2 && d <= capped, "attempt {i}: {d} ∉ [{}, {capped}]", capped / 2);
        }
        // By attempt 5 (500·32 = 16 s) the cap is binding.
        assert!(a[5] >= BACKOFF_CAP_MS / 2 && a[5] <= BACKOFF_CAP_MS);
    }

    #[test]
    fn different_seeds_desynchronise() {
        let same: usize = (0..32)
            .filter(|&i| delay_ms(500, i, 1) == delay_ms(500, i, 2))
            .count();
        assert!(same < 4, "seeds 1 and 2 collided on {same}/32 attempts");
    }

    #[test]
    fn degenerate_hints_stay_sane() {
        assert!(delay_ms(0, 0, 7) >= 1);
        assert!(delay_ms(u32::MAX, 40, 7) <= BACKOFF_CAP_MS);
    }
}
