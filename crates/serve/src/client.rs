//! Blocking client for the `adas-serve` wire protocol.
//!
//! One [`Client`] owns one TCP connection and drives request → response
//! exchanges; campaign submission streams per-cell results through a
//! caller-supplied callback as they arrive.

use crate::protocol::{
    recv_response, send_request, JobState, ProtocolError, ReplayOutcome, Request, Response,
};
use adas_core::job::CellSpec;
use adas_core::{CampaignSpec, CellStats, RunId};
use adas_fuzz::farm::{FuzzJobSpec, SessionOutcome};
use adas_scenarios::RunRecord;
use std::net::TcpStream;
use std::time::Duration;

/// Immediate outcome of a campaign submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// The job was accepted; results will stream on this connection.
    Accepted {
        /// Server-assigned job id.
        job_id: u64,
        /// Number of cells that will stream.
        cells: u32,
    },
    /// Backpressure: the queue is full (or the server is draining).
    Rejected {
        /// Suggested retry delay.
        retry_after_ms: u32,
        /// Server-side reason.
        reason: String,
    },
}

/// A completed campaign as observed by the client.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignResult {
    /// Server-assigned job id.
    pub job_id: u64,
    /// `(cell_index, stats)` in arrival (= submission) order.
    pub cells: Vec<(u32, CellStats)>,
    /// Terminal job state.
    pub state: JobState,
}

/// A worker's capability handshake, from [`Response::WorkerHello`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerHello {
    /// The worker's job-queue capacity.
    pub queue_capacity: u32,
    /// Executor thread count on the worker.
    pub threads: u32,
    /// Batched-execution lane width on the worker.
    pub batch_width: u32,
    /// Cells resident in the worker's in-memory memo at handshake time.
    pub memo_cells: u64,
}

/// Fields of a [`Response::StatusReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobStatus {
    /// Lifecycle state.
    pub state: JobState,
    /// Cells finished.
    pub cells_done: u32,
    /// Cells in the grid.
    pub cells_total: u32,
    /// Simulation runs executed so far.
    pub runs_done: u64,
}

/// A connected protocol client.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to an `adas-serve` daemon.
    ///
    /// # Errors
    ///
    /// Propagates connection failures.
    pub fn connect(addr: &str) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sets a read timeout for responses (`None` waits indefinitely — the
    /// default, appropriate for long-streaming campaigns).
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    fn request(&mut self, request: &Request) -> Result<Response, ProtocolError> {
        send_request(&mut self.stream, request)?;
        recv_response(&mut self.stream)
    }

    /// Submits a campaign and reads the acceptance/rejection frame. On
    /// acceptance, follow with [`Self::stream_results`].
    ///
    /// # Errors
    ///
    /// Protocol or transport failures, or an unexpected response kind.
    pub fn submit(&mut self, spec: &CampaignSpec) -> Result<Submission, ProtocolError> {
        match self.request(&Request::SubmitCampaign(spec.clone()))? {
            Response::Accepted { job_id, cells } => Ok(Submission::Accepted { job_id, cells }),
            Response::Rejected {
                retry_after_ms,
                reason,
            } => Ok(Submission::Rejected {
                retry_after_ms,
                reason,
            }),
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Consumes the result stream of an accepted campaign, invoking
    /// `on_cell` for every streamed cell, until the terminal `JobDone`.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures, or an unexpected response kind.
    pub fn stream_results(
        &mut self,
        mut on_cell: impl FnMut(u32, &CellStats),
    ) -> Result<(Vec<(u32, CellStats)>, JobState), ProtocolError> {
        let mut cells = Vec::new();
        loop {
            match recv_response(&mut self.stream)? {
                Response::CellResult {
                    cell_index, stats, ..
                } => {
                    on_cell(cell_index, &stats);
                    cells.push((cell_index, stats));
                }
                Response::JobDone { state, .. } => return Ok((cells, state)),
                other => {
                    return Err(ProtocolError::Io(format!(
                        "unexpected mid-stream response kind 0x{:02x}",
                        other.kind()
                    )))
                }
            }
        }
    }

    /// Submits a campaign and blocks until it finishes, returning every
    /// streamed cell. `on_cell` observes results as they arrive.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn run_campaign(
        &mut self,
        spec: &CampaignSpec,
        on_cell: impl FnMut(u32, &CellStats),
    ) -> Result<Result<CampaignResult, Submission>, ProtocolError> {
        match self.submit(spec)? {
            rejected @ Submission::Rejected { .. } => Ok(Err(rejected)),
            Submission::Accepted { job_id, .. } => {
                let (cells, state) = self.stream_results(on_cell)?;
                Ok(Ok(CampaignResult {
                    job_id,
                    cells,
                    state,
                }))
            }
        }
    }

    /// Submits a campaign, retrying queue-full rejections with the capped
    /// exponential, deterministically-jittered schedule from
    /// [`crate::backoff`] (honouring each rejection's `retry_after_ms`
    /// hint). Gives up after `max_attempts` submissions, returning the
    /// last rejection.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn submit_with_backoff(
        &mut self,
        spec: &CampaignSpec,
        max_attempts: u32,
        seed: u64,
    ) -> Result<Submission, ProtocolError> {
        let mut attempt = 0u32;
        loop {
            match self.submit(spec)? {
                accepted @ Submission::Accepted { .. } => return Ok(accepted),
                rejected @ Submission::Rejected { retry_after_ms, .. } => {
                    // `retry_after_ms == 0` means "draining, don't retry".
                    if retry_after_ms == 0 || attempt + 1 >= max_attempts {
                        return Ok(rejected);
                    }
                    std::thread::sleep(Duration::from_millis(crate::backoff::delay_ms(
                        retry_after_ms,
                        attempt,
                        seed,
                    )));
                    attempt += 1;
                }
            }
        }
    }

    /// Fabric handshake: registers this connection's peer as a fleet
    /// coordinator and returns the worker's capabilities.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn register_worker(&mut self, fleet_epoch: u64) -> Result<WorkerHello, ProtocolError> {
        match self.request(&Request::RegisterWorker { fleet_epoch })? {
            Response::WorkerHello {
                queue_capacity,
                threads,
                batch_width,
                memo_cells,
            } => Ok(WorkerHello {
                queue_capacity,
                threads,
                batch_width,
                memo_cells,
            }),
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Fabric liveness probe; returns the worker's `(queued, running)`
    /// load after verifying the echoed nonce.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures, or a nonce mismatch.
    pub fn heartbeat(&mut self, nonce: u64) -> Result<(u32, u32), ProtocolError> {
        match self.request(&Request::Heartbeat { nonce })? {
            Response::HeartbeatAck {
                nonce: echoed,
                queued,
                running,
            } => {
                if echoed != nonce {
                    return Err(ProtocolError::Io(format!(
                        "heartbeat nonce mismatch: sent {nonce}, got {echoed}"
                    )));
                }
                Ok((queued, running))
            }
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Fabric dispatch: assigns a sharded cell slice to the worker. On
    /// acceptance, follow with [`Self::stream_results`] — streamed
    /// `cell_index` values are the *global* `indices` passed here.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn assign_cells(
        &mut self,
        assignment_id: u64,
        indices: &[u32],
        spec: &CampaignSpec,
    ) -> Result<Submission, ProtocolError> {
        match self.request(&Request::AssignCells {
            assignment_id,
            indices: indices.to_vec(),
            spec: spec.clone(),
        })? {
            Response::Accepted { job_id, cells } => Ok(Submission::Accepted { job_id, cells }),
            Response::Rejected {
                retry_after_ms,
                reason,
            } => Ok(Submission::Rejected {
                retry_after_ms,
                reason,
            }),
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Submits a fuzz-farm job and reads the acceptance frame. On
    /// acceptance, follow with [`Self::stream_fuzz`].
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn submit_fuzz(&mut self, spec: &FuzzJobSpec) -> Result<Submission, ProtocolError> {
        self.fuzz_submission(&Request::SubmitFuzz(spec.clone()))
    }

    /// Fabric dispatch: assigns a seed slice of a farm job to the worker.
    /// On acceptance, follow with [`Self::stream_fuzz`].
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn assign_fuzz(
        &mut self,
        assignment_id: u64,
        spec: &FuzzJobSpec,
    ) -> Result<Submission, ProtocolError> {
        self.fuzz_submission(&Request::AssignFuzz {
            assignment_id,
            spec: spec.clone(),
        })
    }

    fn fuzz_submission(&mut self, request: &Request) -> Result<Submission, ProtocolError> {
        match self.request(request)? {
            Response::Accepted { job_id, cells } => Ok(Submission::Accepted { job_id, cells }),
            Response::Rejected {
                retry_after_ms,
                reason,
            } => Ok(Submission::Rejected {
                retry_after_ms,
                reason,
            }),
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Consumes the session stream of an accepted fuzz job, invoking
    /// `on_session` per completed session, until the terminal `JobDone`.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures, or an unexpected response kind.
    pub fn stream_fuzz(
        &mut self,
        mut on_session: impl FnMut(&SessionOutcome),
    ) -> Result<(Vec<SessionOutcome>, JobState), ProtocolError> {
        let mut outcomes = Vec::new();
        loop {
            match recv_response(&mut self.stream)? {
                Response::FuzzResult { outcome, .. } => {
                    on_session(&outcome);
                    outcomes.push(outcome);
                }
                Response::JobDone { state, .. } => return Ok((outcomes, state)),
                other => {
                    return Err(ProtocolError::Io(format!(
                        "unexpected mid-stream response kind 0x{:02x}",
                        other.kind()
                    )))
                }
            }
        }
    }

    /// Submits a fuzz-farm job and blocks until every session has
    /// streamed back. `on_session` observes outcomes as they arrive.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn run_fuzz(
        &mut self,
        spec: &FuzzJobSpec,
        on_session: impl FnMut(&SessionOutcome),
    ) -> Result<Result<(Vec<SessionOutcome>, JobState), Submission>, ProtocolError> {
        match self.submit_fuzz(spec)? {
            rejected @ Submission::Rejected { .. } => Ok(Err(rejected)),
            Submission::Accepted { .. } => Ok(Ok(self.stream_fuzz(on_session)?)),
        }
    }

    /// Fabric drain: asks the worker to leave the fleet gracefully (drain
    /// accepted work, then exit).
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn drain_worker(&mut self) -> Result<(), ProtocolError> {
        match self.request(&Request::WorkerDrain)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Executes one fully-specified run on the server, optionally
    /// returning its serialised flight-recorder trace.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn submit_cell(
        &mut self,
        campaign_seed: u64,
        max_steps: u32,
        run: RunId,
        cell: CellSpec,
        with_trace: bool,
    ) -> Result<(RunRecord, Option<Vec<u8>>), ProtocolError> {
        match self.request(&Request::SubmitCell {
            campaign_seed,
            max_steps,
            run,
            cell,
            with_trace,
        })? {
            Response::RunResult { record, trace } => Ok((record, trace)),
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Queries one job's progress.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures, or a server-side error (unknown
    /// job).
    pub fn status(&mut self, job_id: u64) -> Result<JobStatus, ProtocolError> {
        match self.request(&Request::Status { job_id })? {
            Response::StatusReport {
                state,
                cells_done,
                cells_total,
                runs_done,
            } => Ok(JobStatus {
                state,
                cells_done,
                cells_total,
                runs_done,
            }),
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Requests cancellation of a job (idempotent); returns its status at
    /// the time of the request.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures, or a server-side error.
    pub fn cancel(&mut self, job_id: u64) -> Result<JobStatus, ProtocolError> {
        match self.request(&Request::Cancel { job_id })? {
            Response::StatusReport {
                state,
                cells_done,
                cells_total,
                runs_done,
            } => Ok(JobStatus {
                state,
                cells_done,
                cells_total,
                runs_done,
            }),
            Response::Error(e) => Err(ProtocolError::Io(format!("server error: {e}"))),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Fetches the live metrics snapshot (JSON text).
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn metrics(&mut self) -> Result<String, ProtocolError> {
        match self.request(&Request::Metrics)? {
            Response::MetricsJson(json) => Ok(json),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Asks the server to verify a stored trace by content hash.
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn replay(&mut self, trace_hex: &str) -> Result<(ReplayOutcome, String), ProtocolError> {
        match self.request(&Request::Replay {
            trace_hex: trace_hex.to_owned(),
        })? {
            Response::ReplayVerdict { outcome, detail } => Ok((outcome, detail)),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }

    /// Requests graceful shutdown (the server drains in-flight jobs).
    ///
    /// # Errors
    ///
    /// Protocol or transport failures.
    pub fn shutdown(&mut self) -> Result<(), ProtocolError> {
        match self.request(&Request::Shutdown)? {
            Response::ShutdownAck => Ok(()),
            other => Err(ProtocolError::Io(format!(
                "unexpected response kind 0x{:02x}",
                other.kind()
            ))),
        }
    }
}
