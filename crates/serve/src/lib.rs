//! `adas-serve` — a long-lived campaign evaluation service.
//!
//! The CLI harnesses (`table_vi` & co.) pay the full cold-start bill on
//! every invocation: process launch, lazy model training, artifact-cache
//! misses. This crate keeps all of that resident in one daemon and exposes
//! it over a small versioned TCP wire protocol (`std::net` only — the
//! workspace is offline), so repeated campaign evaluations drop to
//! cache-lookup latency.
//!
//! Architecture (one module per box):
//!
//! ```text
//!  client ──frames──▶ accept loop ──▶ connection handler ─┐
//!                                                         │ bounded queue
//!                                                         ▼ (backpressure)
//!                              executor thread ── map_ctl fan-out per cell
//!                                   │                 (adas-parallel)
//!                                   └─ resident model + artifact cache
//! ```
//!
//! * [`protocol`] — framing, request/response codecs, error taxonomy;
//! * [`queue`] — bounded job queue (explicit rejection when full) and the
//!   job registry behind `Status`/`Cancel`;
//! * [`server`] — accept loop, per-connection handlers, the executor, and
//!   graceful drain on `Shutdown`/SIGTERM;
//! * [`client`] — blocking client used by the `adas-serve client`
//!   subcommands, the fabric coordinator, and the integration tests;
//! * [`backoff`] — capped, deterministically-jittered retry schedule for
//!   queue-full rejections;
//! * [`metrics`] — counters + latency histograms, snapshotted as JSON;
//! * [`signal`] — SIGTERM/SIGINT to an atomic flag, no external crates;
//! * [`sink`] — optional `ADAS_STORE_DIR` write-through of finished cells
//!   and deduped fuzz findings to the columnar results store.
//!
//! Determinism contract: a campaign submitted over the wire produces
//! bit-identical per-cell statistics to running the same grid in-process
//! with `adas_core::run_single`, at any `ADAS_THREADS` setting — the
//! integration tests assert byte equality of `CellStats::to_bytes`.

#![warn(missing_docs)]
#![deny(unsafe_code)] // `signal` opts back in, narrowly, for signal(2).

pub mod backoff;
pub mod client;
pub mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;
pub mod signal;
pub mod sink;

pub use client::{CampaignResult, Client, JobStatus, Submission, WorkerHello};
pub use protocol::{JobState, ProtocolError, ReplayOutcome, Request, Response};
pub use server::{Server, ServerConfig, DEFAULT_ADDR, DEFAULT_QUEUE};
