//! Live server metrics: monotonic counters plus per-phase latency
//! histograms, snapshotted as hand-rolled JSON (the vendored `serde` is a
//! compile-only stub) for the `Metrics` request and the CI artifact.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of power-of-two latency buckets: bucket `i` counts samples with
/// `latency_ms < 2^i`, the last bucket is open-ended.
const BUCKETS: usize = 22; // up to ~35 minutes

/// A lock-free log₂-bucketed latency histogram (milliseconds).
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    /// Sum in microseconds so sub-millisecond samples still accumulate.
    total_us: AtomicU64,
    max_us: AtomicU64,
}

impl Histogram {
    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        let ms = us / 1000;
        let idx = if ms == 0 {
            0
        } else {
            usize::min((64 - ms.leading_zeros()) as usize, BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Approximate quantile (upper bucket bound containing it), in ms.
    #[must_use]
    pub fn quantile_ms(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((n as f64) * q).ceil() as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        1u64 << (BUCKETS - 1)
    }

    /// JSON object: count, mean/max, coarse quantiles, non-empty buckets.
    #[must_use]
    pub fn to_json(&self) -> String {
        let count = self.count();
        let total_us = self.total_us.load(Ordering::Relaxed);
        let mean_ms = if count == 0 {
            0.0
        } else {
            total_us as f64 / count as f64 / 1000.0
        };
        let max_ms = self.max_us.load(Ordering::Relaxed) as f64 / 1000.0;
        let mut buckets = String::new();
        let mut first = true;
        for (i, b) in self.buckets.iter().enumerate() {
            let n = b.load(Ordering::Relaxed);
            if n == 0 {
                continue;
            }
            if !first {
                buckets.push_str(", ");
            }
            first = false;
            let le = if i + 1 == BUCKETS {
                "\"inf\"".to_owned()
            } else {
                format!("{}", 1u64 << i)
            };
            buckets.push_str(&format!("{{ \"le_ms\": {le}, \"count\": {n} }}"));
        }
        format!(
            "{{ \"count\": {count}, \"mean_ms\": {mean_ms:.3}, \"max_ms\": {max_ms:.3}, \
             \"p50_le_ms\": {}, \"p99_le_ms\": {}, \"buckets\": [{buckets}] }}",
            self.quantile_ms(0.50),
            self.quantile_ms(0.99),
        )
    }
}

/// All counters and histograms the `Metrics` request snapshots.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    /// Campaigns accepted into the queue.
    pub jobs_submitted: AtomicU64,
    /// Campaigns bounced with backpressure.
    pub jobs_rejected: AtomicU64,
    /// Campaigns that streamed every cell.
    pub jobs_done: AtomicU64,
    /// Campaigns cancelled before completion.
    pub jobs_cancelled: AtomicU64,
    /// Campaigns aborted by internal errors.
    pub jobs_failed: AtomicU64,
    /// Cells streamed (any source).
    pub cells_done: AtomicU64,
    /// Cells answered from the in-memory memo.
    pub cells_memo_hits: AtomicU64,
    /// Cells answered from the on-disk artifact cache.
    pub cells_disk_hits: AtomicU64,
    /// Cells computed by running the simulator (disk tier enabled: the
    /// result was written back).
    pub cells_computed: AtomicU64,
    /// Cells computed with the disk tier disabled (cache bypass).
    pub cells_bypass: AtomicU64,
    /// Individual simulation runs executed (cache hits excluded).
    pub runs_executed: AtomicU64,
    /// Single-run (`SubmitCell`) requests served.
    pub single_runs: AtomicU64,
    /// Replay verifications served.
    pub replays: AtomicU64,
    /// Connections accepted.
    pub connections: AtomicU64,
    /// Frames rejected as malformed / unknown / oversized.
    pub protocol_errors: AtomicU64,
    /// Fabric: `RegisterWorker` handshakes served.
    pub workers_registered: AtomicU64,
    /// Fabric: heartbeat probes answered.
    pub heartbeats: AtomicU64,
    /// Fabric: `AssignCells` slices accepted for streaming.
    pub assignments: AtomicU64,
    /// Fabric: graceful `WorkerDrain` requests honoured.
    pub worker_drains: AtomicU64,
    /// Fuzz farm: `SubmitFuzz`/`AssignFuzz` jobs accepted.
    pub fuzz_jobs: AtomicU64,
    /// Fuzz farm: coverage-guided sessions completed.
    pub fuzz_sessions: AtomicU64,
    /// Fuzz farm: simulation runs consumed by sessions.
    pub fuzz_runs: AtomicU64,
    /// Fuzz farm: sum of final per-session corpus sizes.
    pub fuzz_corpus: AtomicU64,
    /// Fuzz farm: findings surviving the local `(oracle, signature)` fold.
    pub fuzz_findings: AtomicU64,
    /// Fuzz farm: findings dropped as duplicates by that fold.
    pub fuzz_dedup_hits: AtomicU64,
    /// Fuzz farm: deduped findings per oracle family, indexed by
    /// `OracleKind::code()`.
    pub fuzz_by_oracle: [AtomicU64; 6],
    /// Fuzz farm: per-session wall time.
    pub fuzz_session_wall: Histogram,
    /// Queue-entry to execution-start latency.
    pub queue_wait: Histogram,
    /// Per-cell wall time (hit or compute).
    pub cell_wall: Histogram,
    /// Lazy model-training wall time.
    pub model_train: Histogram,
    /// Instantaneous gauges owned by the server (queued, running).
    gauges: Mutex<(usize, usize)>,
}

impl ServeMetrics {
    /// Fresh metrics with the uptime clock started.
    #[must_use]
    pub fn new() -> Self {
        Self {
            started: Instant::now(),
            jobs_submitted: AtomicU64::new(0),
            jobs_rejected: AtomicU64::new(0),
            jobs_done: AtomicU64::new(0),
            jobs_cancelled: AtomicU64::new(0),
            jobs_failed: AtomicU64::new(0),
            cells_done: AtomicU64::new(0),
            cells_memo_hits: AtomicU64::new(0),
            cells_disk_hits: AtomicU64::new(0),
            cells_computed: AtomicU64::new(0),
            cells_bypass: AtomicU64::new(0),
            runs_executed: AtomicU64::new(0),
            single_runs: AtomicU64::new(0),
            replays: AtomicU64::new(0),
            connections: AtomicU64::new(0),
            protocol_errors: AtomicU64::new(0),
            workers_registered: AtomicU64::new(0),
            heartbeats: AtomicU64::new(0),
            assignments: AtomicU64::new(0),
            worker_drains: AtomicU64::new(0),
            fuzz_jobs: AtomicU64::new(0),
            fuzz_sessions: AtomicU64::new(0),
            fuzz_runs: AtomicU64::new(0),
            fuzz_corpus: AtomicU64::new(0),
            fuzz_findings: AtomicU64::new(0),
            fuzz_dedup_hits: AtomicU64::new(0),
            fuzz_by_oracle: Default::default(),
            fuzz_session_wall: Histogram::default(),
            queue_wait: Histogram::default(),
            cell_wall: Histogram::default(),
            model_train: Histogram::default(),
            gauges: Mutex::new((0, 0)),
        }
    }

    /// Updates the instantaneous queued/running gauges.
    pub fn set_gauges(&self, queued: usize, running: usize) {
        *self.gauges.lock().expect("gauges lock") = (queued, running);
    }

    /// The instantaneous `(queued, running)` gauges.
    #[must_use]
    pub fn gauges(&self) -> (usize, usize) {
        *self.gauges.lock().expect("gauges lock")
    }

    /// Full JSON snapshot (schema documented in the README). `cache` is the
    /// artifact cache's own hit/miss accounting, folded into the same
    /// document so one scrape tells the whole story; `queue_depth` /
    /// `queue_capacity` are the live job-queue occupancy.
    #[must_use]
    pub fn snapshot_json(
        &self,
        cache: &adas_core::ArtifactCache,
        queue_depth: usize,
        queue_capacity: usize,
    ) -> String {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let uptime = self.started.elapsed().as_secs_f64();
        let cells_done = g(&self.cells_done);
        let cells_per_sec = if uptime > 0.0 {
            cells_done as f64 / uptime
        } else {
            0.0
        };
        let hits = g(&self.cells_memo_hits) + g(&self.cells_disk_hits);
        let hit_rate = if cells_done > 0 {
            hits as f64 / cells_done as f64
        } else {
            0.0
        };
        let (queued, running) = *self.gauges.lock().expect("gauges lock");
        let cs = cache.stats();
        let by_oracle = self
            .fuzz_by_oracle
            .iter()
            .map(|a| a.load(Ordering::Relaxed).to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\n  \"uptime_s\": {uptime:.3},\n  \"jobs\": {{ \"submitted\": {}, \"rejected\": {}, \
             \"done\": {}, \"cancelled\": {}, \"failed\": {}, \"queued\": {queued}, \
             \"running\": {running} }},\n  \
             \"queue\": {{ \"depth\": {queue_depth}, \"capacity\": {queue_capacity}, \
             \"running\": {running} }},\n  \"cells\": {{ \"done\": {cells_done}, \
             \"memo_hits\": {}, \"disk_hits\": {}, \"computed\": {}, \"bypass\": {}, \
             \"hit_rate\": {hit_rate:.4}, \"per_sec\": {cells_per_sec:.3} }},\n  \
             \"runs_executed\": {},\n  \"single_runs\": {},\n  \"replays\": {},\n  \
             \"connections\": {},\n  \"protocol_errors\": {},\n  \
             \"fabric\": {{ \"workers_registered\": {}, \"heartbeats\": {}, \
             \"assignments\": {}, \"worker_drains\": {} }},\n  \
             \"fuzz\": {{ \"jobs\": {}, \"sessions\": {}, \"runs\": {}, \"corpus\": {}, \
             \"findings\": {}, \"dedup_hits\": {}, \"by_oracle\": [{by_oracle}] }},\n  \
             \"artifact_cache\": {{ \"enabled\": {}, \"hits\": {}, \"misses\": {}, \
             \"writes\": {}, \"bypasses\": {} }},\n  \"latency\": {{\n    \"queue_wait_ms\": {},\n    \
             \"cell_wall_ms\": {},\n    \"model_train_ms\": {},\n    \"fuzz_session_ms\": {}\n  }}\n}}\n",
            g(&self.jobs_submitted),
            g(&self.jobs_rejected),
            g(&self.jobs_done),
            g(&self.jobs_cancelled),
            g(&self.jobs_failed),
            g(&self.cells_memo_hits),
            g(&self.cells_disk_hits),
            g(&self.cells_computed),
            g(&self.cells_bypass),
            g(&self.runs_executed),
            g(&self.single_runs),
            g(&self.replays),
            g(&self.connections),
            g(&self.protocol_errors),
            g(&self.workers_registered),
            g(&self.heartbeats),
            g(&self.assignments),
            g(&self.worker_drains),
            g(&self.fuzz_jobs),
            g(&self.fuzz_sessions),
            g(&self.fuzz_runs),
            g(&self.fuzz_corpus),
            g(&self.fuzz_findings),
            g(&self.fuzz_dedup_hits),
            cache.is_enabled(),
            cs.hits,
            cs.misses,
            cs.writes,
            cs.bypasses,
            self.queue_wait.to_json(),
            self.cell_wall.to_json(),
            self.model_train.to_json(),
            self.fuzz_session_wall.to_json(),
        )
    }
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        h.record(Duration::from_micros(300)); // < 1 ms → bucket 0
        h.record(Duration::from_millis(3)); // < 4 ms → bucket 2
        h.record(Duration::from_millis(100)); // < 128 ms → bucket 7
        assert_eq!(h.count(), 3);
        assert_eq!(h.quantile_ms(0.5), 4);
        assert_eq!(h.quantile_ms(0.99), 128);
        let json = h.to_json();
        assert!(json.contains("\"count\": 3"), "{json}");
        assert!(json.contains("\"le_ms\": 4"), "{json}");
    }

    #[test]
    fn snapshot_is_wellformed_json_shape() {
        let m = ServeMetrics::new();
        m.jobs_submitted.fetch_add(2, Ordering::Relaxed);
        m.cells_done.fetch_add(5, Ordering::Relaxed);
        m.cells_memo_hits.fetch_add(5, Ordering::Relaxed);
        m.set_gauges(1, 1);
        let json = m.snapshot_json(&adas_core::ArtifactCache::disabled(), 3, 8);
        // Structural sanity: balanced braces, expected keys present.
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "{json}"
        );
        for key in [
            "\"uptime_s\"",
            "\"jobs\"",
            "\"cells\"",
            "\"bypass\": 0",
            "\"hit_rate\": 1.0000",
            "\"queue\": { \"depth\": 3, \"capacity\": 8",
            "\"fabric\"",
            "\"fuzz\"",
            "\"by_oracle\": [0, 0, 0, 0, 0, 0]",
            "\"queue_wait_ms\"",
            "\"protocol_errors\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
    }
}
