//! The `adas-serve` wire protocol: a small, versioned, length-prefixed
//! binary framing over TCP.
//!
//! # Framing
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       1     magic 'A' (0x41)
//! 1       1     magic 'S' (0x53)
//! 2       1     protocol version (currently 2)
//! 3       1     message kind (see [`Request`] / [`Response`])
//! 4       4     payload length, u32 little-endian (≤ MAX_PAYLOAD)
//! 8       n     payload (kind-specific layout, little-endian)
//! ```
//!
//! Payload codecs build on the bounds-checked [`ByteReader`] /
//! [`ByteWriter`] from `adas_core::job`: decoding untrusted bytes can
//! fail, it can never panic, and a declared length is validated against
//! [`MAX_PAYLOAD`] *before* any allocation, so a hostile 4 GiB length
//! prefix costs the server nothing.
//!
//! One connection carries a sequence of request → response exchanges. The
//! streaming exchanges (`SubmitCampaign`, `AssignCells`) produce multiple
//! response frames ([`Response::Accepted`], then one
//! [`Response::CellResult`] per cell as it completes, then
//! [`Response::JobDone`]); everything else is strictly one frame each way.
//!
//! # Version 2: fabric frames
//!
//! Version 2 adds the coordinator ↔ worker vocabulary used by
//! `adas-fabric`: [`Request::RegisterWorker`] / [`Response::WorkerHello`]
//! (capability handshake), [`Request::Heartbeat`] /
//! [`Response::HeartbeatAck`] (liveness + load), [`Request::AssignCells`]
//! (a sharded slice of a campaign grid, answered with the same streaming
//! `Accepted` / `CellResult` / `JobDone` frames but carrying the
//! coordinator's *global* grid indices), and [`Request::WorkerDrain`]
//! (graceful fleet removal, answered with [`Response::ShutdownAck`]).

use adas_core::job::{decode_run_id, encode_run_id, ByteReader, ByteWriter};
use adas_core::{CampaignSpec, CellSpec, CellStats, RunId};
use std::io::{Read, Write};

/// Protocol magic: every frame starts `b"AS"`.
pub const MAGIC: [u8; 2] = *b"AS";

/// Current protocol version byte (2 added the fabric frames).
pub const VERSION: u8 = 2;

/// Upper bound on a frame payload (64 MiB — comfortably above the largest
/// legitimate message, a full-run flight-recorder trace).
pub const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// Why a frame could not be read or decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtocolError {
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// No frame started within the transport's read timeout (the
    /// connection is still healthy — callers poll shutdown and retry).
    TimedOut,
    /// The frame did not start with [`MAGIC`].
    BadMagic([u8; 2]),
    /// Version byte mismatch (peer speaks a different protocol revision).
    BadVersion(u8),
    /// Unknown message kind byte.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD`].
    Oversized(u32),
    /// Structurally invalid payload (truncated, bad tag, trailing bytes…).
    Malformed(&'static str),
    /// Transport-level I/O failure (includes mid-frame truncation).
    Io(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Closed => write!(f, "connection closed"),
            ProtocolError::TimedOut => write!(f, "no frame within the read timeout"),
            ProtocolError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtocolError::BadVersion(v) => {
                write!(f, "unsupported protocol version {v} (expected {VERSION})")
            }
            ProtocolError::UnknownKind(k) => write!(f, "unknown message kind 0x{k:02x}"),
            ProtocolError::Oversized(n) => {
                write!(f, "declared payload length {n} exceeds cap {MAX_PAYLOAD}")
            }
            ProtocolError::Malformed(what) => write!(f, "malformed payload: {what}"),
            ProtocolError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<std::io::Error> for ProtocolError {
    fn from(e: std::io::Error) -> Self {
        ProtocolError::Io(e.to_string())
    }
}

/// Job lifecycle state, as reported over the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting in the queue.
    Queued,
    /// Cells are executing.
    Running,
    /// All cells streamed successfully.
    Done,
    /// Cancelled before completion (client request or server shutdown).
    Cancelled,
    /// Aborted by an internal error.
    Failed,
}

impl JobState {
    fn to_u8(self) -> u8 {
        match self {
            JobState::Queued => 0,
            JobState::Running => 1,
            JobState::Done => 2,
            JobState::Cancelled => 3,
            JobState::Failed => 4,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => JobState::Queued,
            1 => JobState::Running,
            2 => JobState::Done,
            3 => JobState::Cancelled,
            4 => JobState::Failed,
            _ => return None,
        })
    }

    /// Whether the job can make no further progress.
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, JobState::Done | JobState::Cancelled | JobState::Failed)
    }
}

impl std::fmt::Display for JobState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        };
        write!(f, "{s}")
    }
}

/// Outcome of a [`Request::Replay`] verification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Re-execution reproduced the recorded trace bit-for-bit.
    Identical,
    /// Re-execution diverged from the recording.
    Diverged,
    /// No trace with that content hash in the server's trace directory.
    NotFound,
    /// The trace could not be replayed (config drift, missing model…).
    Error,
}

impl ReplayOutcome {
    fn to_u8(self) -> u8 {
        match self {
            ReplayOutcome::Identical => 0,
            ReplayOutcome::Diverged => 1,
            ReplayOutcome::NotFound => 2,
            ReplayOutcome::Error => 3,
        }
    }

    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            0 => ReplayOutcome::Identical,
            1 => ReplayOutcome::Diverged,
            2 => ReplayOutcome::NotFound,
            3 => ReplayOutcome::Error,
            _ => return None,
        })
    }
}

/// Client → server messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a campaign grid; the server streams per-cell results back.
    SubmitCampaign(CampaignSpec),
    /// Execute one fully-specified run synchronously, optionally returning
    /// its flight-recorder trace in the response.
    SubmitCell {
        /// Campaign seed deriving the run's RNG streams.
        campaign_seed: u64,
        /// Per-run step cap override (0 = platform default).
        max_steps: u32,
        /// Run coordinates.
        run: RunId,
        /// Fault and interventions.
        cell: CellSpec,
        /// Request the trace bytes alongside the run record.
        with_trace: bool,
    },
    /// Verify a stored trace by content hash: the server re-executes it
    /// and reports bit-exactness.
    Replay {
        /// 16-digit lowercase hex content hash (the `trace-<hex>.bin`
        /// naming under the trace directory).
        trace_hex: String,
    },
    /// Query one job's progress.
    Status {
        /// Job to query.
        job_id: u64,
    },
    /// Request job cancellation (idempotent; best-effort).
    Cancel {
        /// Job to cancel.
        job_id: u64,
    },
    /// Fetch the live metrics snapshot (JSON).
    Metrics,
    /// Graceful shutdown: stop accepting work, drain accepted jobs, exit.
    Shutdown,
    /// Coordinator → worker: capability handshake opening a fleet
    /// membership. Answered with [`Response::WorkerHello`].
    RegisterWorker {
        /// Coordinator's fleet epoch (bumped per coordinator start), so a
        /// worker can tell reconnects from a restarted coordinator.
        fleet_epoch: u64,
    },
    /// Coordinator → worker: liveness probe. Answered with
    /// [`Response::HeartbeatAck`] echoing the nonce.
    Heartbeat {
        /// Echo token correlating the ack with this probe.
        nonce: u64,
    },
    /// Coordinator → worker: execute a sharded slice of a campaign grid.
    ///
    /// `spec.cells` holds only the assigned cells; `indices[i]` is the
    /// coordinator-side *global* grid index of `spec.cells[i]`. The worker
    /// streams `Accepted` / `CellResult` / `JobDone` with
    /// `job_id = assignment_id` and `cell_index` = the global index, so
    /// the coordinator can merge slices deterministically.
    AssignCells {
        /// Coordinator-assigned id echoed on every streamed frame.
        assignment_id: u64,
        /// Global grid index of each cell in `spec.cells` (same length).
        indices: Vec<u32>,
        /// The campaign parameters plus the assigned cell subset.
        spec: CampaignSpec,
    },
    /// Coordinator → worker: leave the fleet gracefully — stop accepting
    /// work, drain, exit. Answered with [`Response::ShutdownAck`].
    WorkerDrain,
    /// Submit a fuzz-farm job: one time-boxed coverage-guided session per
    /// seed in the spec. The server streams [`Response::Accepted`] (with
    /// `cells` = session count), one [`Response::FuzzResult`] per
    /// completed session in spec order, then [`Response::JobDone`].
    SubmitFuzz(adas_fuzz::FuzzJobSpec),
    /// Coordinator → worker: run a subset of a farm job's sessions.
    ///
    /// `spec.seeds` holds only the assigned seeds; the worker streams the
    /// same `Accepted` / `FuzzResult` / `JobDone` frames with
    /// `job_id = assignment_id`. Outcomes carry their seed, so the
    /// coordinator folds slices deterministically in *global* seed order.
    AssignFuzz {
        /// Coordinator-assigned id echoed on every streamed frame.
        assignment_id: u64,
        /// The job budget plus the assigned seed subset.
        spec: adas_fuzz::FuzzJobSpec,
    },
}

/// Server → client messages.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Campaign accepted; per-cell results will stream on this connection.
    Accepted {
        /// Assigned job id (usable from other connections).
        job_id: u64,
        /// Number of cells that will stream.
        cells: u32,
    },
    /// Backpressure: the job queue is full, retry after the given delay.
    Rejected {
        /// Suggested client-side retry delay.
        retry_after_ms: u32,
        /// Human-readable reason.
        reason: String,
    },
    /// One completed cell's aggregate statistics (streamed in submission
    /// order as cells finish).
    CellResult {
        /// Job the cell belongs to.
        job_id: u64,
        /// Index into the submitted grid.
        cell_index: u32,
        /// The cell's aggregate statistics.
        stats: CellStats,
    },
    /// Terminal frame of a campaign stream.
    JobDone {
        /// The finished job.
        job_id: u64,
        /// Terminal state ([`JobState::Done`] / `Cancelled` / `Failed`).
        state: JobState,
    },
    /// Result of a [`Request::SubmitCell`].
    RunResult {
        /// The run's full record (bit-exact float encoding).
        record: adas_scenarios::RunRecord,
        /// Serialised flight-recorder trace, when requested.
        trace: Option<Vec<u8>>,
    },
    /// Result of a [`Request::Replay`].
    ReplayVerdict {
        /// Verification outcome.
        outcome: ReplayOutcome,
        /// Divergence locus / error detail / trace identity.
        detail: String,
    },
    /// Progress report for a job.
    StatusReport {
        /// Lifecycle state.
        state: JobState,
        /// Cells fully streamed.
        cells_done: u32,
        /// Cells in the grid.
        cells_total: u32,
        /// Simulation runs completed (across all cells).
        runs_done: u64,
    },
    /// Metrics snapshot (JSON text, schema documented in the README).
    MetricsJson(String),
    /// Request-level failure (the connection stays usable).
    Error(String),
    /// Shutdown acknowledged; the server drains and exits.
    ShutdownAck,
    /// Worker → coordinator: capability handshake reply to
    /// [`Request::RegisterWorker`].
    WorkerHello {
        /// The worker's job-queue capacity (admission sizing hint).
        queue_capacity: u32,
        /// Executor thread count the worker will run cells with.
        threads: u32,
        /// Batched-execution lane width (`ADAS_BATCH`).
        batch_width: u32,
        /// Cells currently resident in the worker's in-memory memo.
        memo_cells: u64,
    },
    /// Worker → coordinator: liveness + instantaneous load, replying to
    /// [`Request::Heartbeat`].
    HeartbeatAck {
        /// The probe's nonce, echoed.
        nonce: u64,
        /// Jobs waiting in the worker's queue.
        queued: u32,
        /// Jobs currently executing.
        running: u32,
    },
    /// One completed fuzz session (streamed in spec-seed order as
    /// sessions finish, for [`Request::SubmitFuzz`] /
    /// [`Request::AssignFuzz`]).
    FuzzResult {
        /// Job the session belongs to.
        job_id: u64,
        /// The session's full outcome, shrunk findings included.
        outcome: adas_fuzz::SessionOutcome,
    },
}

const K_SUBMIT_CAMPAIGN: u8 = 0x01;
const K_SUBMIT_CELL: u8 = 0x02;
const K_REPLAY: u8 = 0x03;
const K_STATUS: u8 = 0x04;
const K_CANCEL: u8 = 0x05;
const K_METRICS: u8 = 0x06;
const K_SHUTDOWN: u8 = 0x07;
const K_REGISTER_WORKER: u8 = 0x08;
const K_HEARTBEAT: u8 = 0x09;
const K_ASSIGN_CELLS: u8 = 0x0A;
const K_WORKER_DRAIN: u8 = 0x0B;
const K_SUBMIT_FUZZ: u8 = 0x0C;
const K_ASSIGN_FUZZ: u8 = 0x0D;

const K_ACCEPTED: u8 = 0x81;
const K_REJECTED: u8 = 0x82;
const K_CELL_RESULT: u8 = 0x83;
const K_JOB_DONE: u8 = 0x84;
const K_RUN_RESULT: u8 = 0x85;
const K_REPLAY_VERDICT: u8 = 0x86;
const K_STATUS_REPORT: u8 = 0x87;
const K_METRICS_JSON: u8 = 0x88;
const K_ERROR: u8 = 0x89;
const K_SHUTDOWN_ACK: u8 = 0x8A;
const K_WORKER_HELLO: u8 = 0x8B;
const K_HEARTBEAT_ACK: u8 = 0x8C;
const K_FUZZ_RESULT: u8 = 0x8D;

fn utf8(bytes: &[u8]) -> Result<String, ProtocolError> {
    String::from_utf8(bytes.to_vec()).map_err(|_| ProtocolError::Malformed("non-UTF-8 string"))
}

impl Request {
    /// The frame kind byte.
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            Request::SubmitCampaign(_) => K_SUBMIT_CAMPAIGN,
            Request::SubmitCell { .. } => K_SUBMIT_CELL,
            Request::Replay { .. } => K_REPLAY,
            Request::Status { .. } => K_STATUS,
            Request::Cancel { .. } => K_CANCEL,
            Request::Metrics => K_METRICS,
            Request::Shutdown => K_SHUTDOWN,
            Request::RegisterWorker { .. } => K_REGISTER_WORKER,
            Request::Heartbeat { .. } => K_HEARTBEAT,
            Request::AssignCells { .. } => K_ASSIGN_CELLS,
            Request::WorkerDrain => K_WORKER_DRAIN,
            Request::SubmitFuzz(_) => K_SUBMIT_FUZZ,
            Request::AssignFuzz { .. } => K_ASSIGN_FUZZ,
        }
    }

    /// Serialises the payload (without the frame header).
    #[must_use]
    pub fn payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Request::SubmitCampaign(spec) => w.bytes(&spec.to_bytes()),
            Request::SubmitCell {
                campaign_seed,
                max_steps,
                run,
                cell,
                with_trace,
            } => {
                w.u64(*campaign_seed);
                w.u32(*max_steps);
                encode_run_id(*run, &mut w);
                cell.encode(&mut w);
                w.bool(*with_trace);
            }
            Request::Replay { trace_hex } => w.blob(trace_hex.as_bytes()),
            Request::Status { job_id } | Request::Cancel { job_id } => w.u64(*job_id),
            Request::Metrics | Request::Shutdown | Request::WorkerDrain => {}
            Request::RegisterWorker { fleet_epoch } => w.u64(*fleet_epoch),
            Request::Heartbeat { nonce } => w.u64(*nonce),
            Request::AssignCells {
                assignment_id,
                indices,
                spec,
            } => {
                w.u64(*assignment_id);
                w.u32(indices.len() as u32);
                for i in indices {
                    w.u32(*i);
                }
                w.blob(&spec.to_bytes());
            }
            Request::SubmitFuzz(spec) => w.bytes(&spec.to_bytes()),
            Request::AssignFuzz {
                assignment_id,
                spec,
            } => {
                w.u64(*assignment_id);
                w.blob(&spec.to_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes a request payload for `kind`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownKind`] for non-request kind bytes,
    /// [`ProtocolError::Malformed`] for structurally invalid payloads.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = ByteReader::new(payload);
        let request = match kind {
            K_SUBMIT_CAMPAIGN => Request::SubmitCampaign(
                CampaignSpec::from_bytes(payload)
                    .ok_or(ProtocolError::Malformed("campaign spec"))?,
            ),
            K_SUBMIT_CELL => {
                let campaign_seed =
                    r.u64().ok_or(ProtocolError::Malformed("cell seed"))?;
                let max_steps = r.u32().ok_or(ProtocolError::Malformed("cell max_steps"))?;
                let run =
                    decode_run_id(&mut r).ok_or(ProtocolError::Malformed("cell run id"))?;
                let cell =
                    CellSpec::decode(&mut r).ok_or(ProtocolError::Malformed("cell spec"))?;
                let with_trace = r.bool().ok_or(ProtocolError::Malformed("trace flag"))?;
                let out = Request::SubmitCell {
                    campaign_seed,
                    max_steps,
                    run,
                    cell,
                    with_trace,
                };
                if !r.exhausted() {
                    return Err(ProtocolError::Malformed("trailing bytes"));
                }
                return Ok(out);
            }
            K_REPLAY => {
                let hex = r.blob().ok_or(ProtocolError::Malformed("trace hash"))?;
                let out = Request::Replay {
                    trace_hex: utf8(hex)?,
                };
                if !r.exhausted() {
                    return Err(ProtocolError::Malformed("trailing bytes"));
                }
                return Ok(out);
            }
            K_STATUS => Request::Status {
                job_id: r.u64().ok_or(ProtocolError::Malformed("job id"))?,
            },
            K_CANCEL => Request::Cancel {
                job_id: r.u64().ok_or(ProtocolError::Malformed("job id"))?,
            },
            K_METRICS => Request::Metrics,
            K_SHUTDOWN => Request::Shutdown,
            K_REGISTER_WORKER => Request::RegisterWorker {
                fleet_epoch: r.u64().ok_or(ProtocolError::Malformed("fleet epoch"))?,
            },
            K_HEARTBEAT => Request::Heartbeat {
                nonce: r.u64().ok_or(ProtocolError::Malformed("nonce"))?,
            },
            K_ASSIGN_CELLS => {
                let assignment_id =
                    r.u64().ok_or(ProtocolError::Malformed("assignment id"))?;
                let count = r.u32().ok_or(ProtocolError::Malformed("index count"))? as usize;
                if count == 0 || count > adas_core::job::MAX_CELLS {
                    return Err(ProtocolError::Malformed("index count out of range"));
                }
                let mut indices = Vec::with_capacity(count);
                for _ in 0..count {
                    indices.push(r.u32().ok_or(ProtocolError::Malformed("cell index"))?);
                }
                let spec_bytes = r.blob().ok_or(ProtocolError::Malformed("assign spec"))?;
                let spec = CampaignSpec::from_bytes(spec_bytes)
                    .ok_or(ProtocolError::Malformed("assign spec codec"))?;
                if spec.cells.len() != count {
                    return Err(ProtocolError::Malformed("index/cell count mismatch"));
                }
                Request::AssignCells {
                    assignment_id,
                    indices,
                    spec,
                }
            }
            K_WORKER_DRAIN => Request::WorkerDrain,
            K_SUBMIT_FUZZ => Request::SubmitFuzz(
                adas_fuzz::FuzzJobSpec::from_bytes(payload)
                    .ok_or(ProtocolError::Malformed("fuzz spec"))?,
            ),
            K_ASSIGN_FUZZ => {
                let assignment_id =
                    r.u64().ok_or(ProtocolError::Malformed("assignment id"))?;
                let spec_bytes = r.blob().ok_or(ProtocolError::Malformed("fuzz spec"))?;
                Request::AssignFuzz {
                    assignment_id,
                    spec: adas_fuzz::FuzzJobSpec::from_bytes(spec_bytes)
                        .ok_or(ProtocolError::Malformed("fuzz spec codec"))?,
                }
            }
            other => return Err(ProtocolError::UnknownKind(other)),
        };
        // SubmitCampaign / SubmitFuzz consumed the payload wholesale (their
        // codecs enforce exact length); the fixed-layout kinds must leave
        // nothing behind.
        match &request {
            Request::SubmitCampaign(_) | Request::SubmitFuzz(_) => {}
            _ if !r.exhausted() => return Err(ProtocolError::Malformed("trailing bytes")),
            _ => {}
        }
        Ok(request)
    }
}

impl Response {
    /// The frame kind byte.
    #[must_use]
    pub fn kind(&self) -> u8 {
        match self {
            Response::Accepted { .. } => K_ACCEPTED,
            Response::Rejected { .. } => K_REJECTED,
            Response::CellResult { .. } => K_CELL_RESULT,
            Response::JobDone { .. } => K_JOB_DONE,
            Response::RunResult { .. } => K_RUN_RESULT,
            Response::ReplayVerdict { .. } => K_REPLAY_VERDICT,
            Response::StatusReport { .. } => K_STATUS_REPORT,
            Response::MetricsJson(_) => K_METRICS_JSON,
            Response::Error(_) => K_ERROR,
            Response::ShutdownAck => K_SHUTDOWN_ACK,
            Response::WorkerHello { .. } => K_WORKER_HELLO,
            Response::HeartbeatAck { .. } => K_HEARTBEAT_ACK,
            Response::FuzzResult { .. } => K_FUZZ_RESULT,
        }
    }

    /// Serialises the payload (without the frame header).
    #[must_use]
    pub fn payload(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        match self {
            Response::Accepted { job_id, cells } => {
                w.u64(*job_id);
                w.u32(*cells);
            }
            Response::Rejected {
                retry_after_ms,
                reason,
            } => {
                w.u32(*retry_after_ms);
                w.blob(reason.as_bytes());
            }
            Response::CellResult {
                job_id,
                cell_index,
                stats,
            } => {
                w.u64(*job_id);
                w.u32(*cell_index);
                w.blob(&stats.to_bytes());
            }
            Response::JobDone { job_id, state } => {
                w.u64(*job_id);
                w.u8(state.to_u8());
            }
            Response::RunResult { record, trace } => {
                let mut rec = ByteWriter::new();
                adas_core::job::encode_run_record(record, &mut rec);
                w.blob(&rec.into_bytes());
                w.bool(trace.is_some());
                if let Some(t) = trace {
                    w.blob(t);
                }
            }
            Response::ReplayVerdict { outcome, detail } => {
                w.u8(outcome.to_u8());
                w.blob(detail.as_bytes());
            }
            Response::StatusReport {
                state,
                cells_done,
                cells_total,
                runs_done,
            } => {
                w.u8(state.to_u8());
                w.u32(*cells_done);
                w.u32(*cells_total);
                w.u64(*runs_done);
            }
            Response::MetricsJson(json) => w.blob(json.as_bytes()),
            Response::Error(message) => w.blob(message.as_bytes()),
            Response::ShutdownAck => {}
            Response::WorkerHello {
                queue_capacity,
                threads,
                batch_width,
                memo_cells,
            } => {
                w.u32(*queue_capacity);
                w.u32(*threads);
                w.u32(*batch_width);
                w.u64(*memo_cells);
            }
            Response::HeartbeatAck {
                nonce,
                queued,
                running,
            } => {
                w.u64(*nonce);
                w.u32(*queued);
                w.u32(*running);
            }
            Response::FuzzResult { job_id, outcome } => {
                w.u64(*job_id);
                w.blob(&outcome.to_bytes());
            }
        }
        w.into_bytes()
    }

    /// Decodes a response payload for `kind`.
    ///
    /// # Errors
    ///
    /// [`ProtocolError::UnknownKind`] for non-response kind bytes,
    /// [`ProtocolError::Malformed`] for structurally invalid payloads.
    pub fn decode(kind: u8, payload: &[u8]) -> Result<Self, ProtocolError> {
        let mut r = ByteReader::new(payload);
        let response = match kind {
            K_ACCEPTED => Response::Accepted {
                job_id: r.u64().ok_or(ProtocolError::Malformed("job id"))?,
                cells: r.u32().ok_or(ProtocolError::Malformed("cell count"))?,
            },
            K_REJECTED => Response::Rejected {
                retry_after_ms: r.u32().ok_or(ProtocolError::Malformed("retry delay"))?,
                reason: utf8(r.blob().ok_or(ProtocolError::Malformed("reason"))?)?,
            },
            K_CELL_RESULT => {
                let job_id = r.u64().ok_or(ProtocolError::Malformed("job id"))?;
                let cell_index = r.u32().ok_or(ProtocolError::Malformed("cell index"))?;
                let stats_bytes = r.blob().ok_or(ProtocolError::Malformed("cell stats"))?;
                Response::CellResult {
                    job_id,
                    cell_index,
                    stats: CellStats::from_bytes(stats_bytes)
                        .ok_or(ProtocolError::Malformed("cell stats codec"))?,
                }
            }
            K_JOB_DONE => Response::JobDone {
                job_id: r.u64().ok_or(ProtocolError::Malformed("job id"))?,
                state: r
                    .u8()
                    .and_then(JobState::from_u8)
                    .ok_or(ProtocolError::Malformed("job state"))?,
            },
            K_RUN_RESULT => {
                let rec_bytes = r.blob().ok_or(ProtocolError::Malformed("run record"))?;
                let mut rec_reader = ByteReader::new(rec_bytes);
                let record = adas_core::job::decode_run_record(&mut rec_reader)
                    .filter(|_| rec_reader.exhausted())
                    .ok_or(ProtocolError::Malformed("run record codec"))?;
                let has_trace = r.bool().ok_or(ProtocolError::Malformed("trace flag"))?;
                let trace = if has_trace {
                    Some(
                        r.blob()
                            .ok_or(ProtocolError::Malformed("trace bytes"))?
                            .to_vec(),
                    )
                } else {
                    None
                };
                Response::RunResult { record, trace }
            }
            K_REPLAY_VERDICT => Response::ReplayVerdict {
                outcome: r
                    .u8()
                    .and_then(ReplayOutcome::from_u8)
                    .ok_or(ProtocolError::Malformed("replay outcome"))?,
                detail: utf8(r.blob().ok_or(ProtocolError::Malformed("detail"))?)?,
            },
            K_STATUS_REPORT => Response::StatusReport {
                state: r
                    .u8()
                    .and_then(JobState::from_u8)
                    .ok_or(ProtocolError::Malformed("job state"))?,
                cells_done: r.u32().ok_or(ProtocolError::Malformed("cells done"))?,
                cells_total: r.u32().ok_or(ProtocolError::Malformed("cells total"))?,
                runs_done: r.u64().ok_or(ProtocolError::Malformed("runs done"))?,
            },
            K_METRICS_JSON => {
                Response::MetricsJson(utf8(r.blob().ok_or(ProtocolError::Malformed("json"))?)?)
            }
            K_ERROR => Response::Error(utf8(
                r.blob().ok_or(ProtocolError::Malformed("message"))?,
            )?),
            K_SHUTDOWN_ACK => Response::ShutdownAck,
            K_WORKER_HELLO => Response::WorkerHello {
                queue_capacity: r.u32().ok_or(ProtocolError::Malformed("queue capacity"))?,
                threads: r.u32().ok_or(ProtocolError::Malformed("threads"))?,
                batch_width: r.u32().ok_or(ProtocolError::Malformed("batch width"))?,
                memo_cells: r.u64().ok_or(ProtocolError::Malformed("memo cells"))?,
            },
            K_HEARTBEAT_ACK => Response::HeartbeatAck {
                nonce: r.u64().ok_or(ProtocolError::Malformed("nonce"))?,
                queued: r.u32().ok_or(ProtocolError::Malformed("queued"))?,
                running: r.u32().ok_or(ProtocolError::Malformed("running"))?,
            },
            K_FUZZ_RESULT => {
                let job_id = r.u64().ok_or(ProtocolError::Malformed("job id"))?;
                let outcome_bytes =
                    r.blob().ok_or(ProtocolError::Malformed("fuzz outcome"))?;
                Response::FuzzResult {
                    job_id,
                    outcome: adas_fuzz::SessionOutcome::from_bytes(outcome_bytes)
                        .ok_or(ProtocolError::Malformed("fuzz outcome codec"))?,
                }
            }
            other => return Err(ProtocolError::UnknownKind(other)),
        };
        if !r.exhausted() {
            return Err(ProtocolError::Malformed("trailing bytes"));
        }
        Ok(response)
    }
}

/// Writes one frame (header + payload) to the transport.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn write_frame(w: &mut impl Write, kind: u8, payload: &[u8]) -> std::io::Result<()> {
    debug_assert!(payload.len() <= MAX_PAYLOAD as usize);
    let mut header = [0u8; 8];
    header[0] = MAGIC[0];
    header[1] = MAGIC[1];
    header[2] = VERSION;
    header[3] = kind;
    header[4..8].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()
}

/// Retries `read` across timeout errors for at most `attempts` rounds —
/// used *inside* a frame, where a stalled peer must eventually be dropped
/// (anti-wedging) but an OS read timeout on a large in-flight payload must
/// not kill the connection.
fn read_exact_bounded(
    r: &mut impl Read,
    mut buf: &mut [u8],
    mut attempts: u32,
) -> Result<(), ProtocolError> {
    while !buf.is_empty() {
        match r.read(buf) {
            Ok(0) => return Err(ProtocolError::Io("truncated frame".into())),
            Ok(n) => buf = &mut buf[n..],
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                attempts = attempts
                    .checked_sub(1)
                    .ok_or_else(|| ProtocolError::Io("peer stalled mid-frame".into()))?;
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Read-timeout rounds tolerated mid-frame before the peer is declared
/// stalled (with the server's 250 ms read timeout: ~10 s).
const MID_FRAME_ATTEMPTS: u32 = 40;

/// Reads one frame, returning `(kind, payload)`.
///
/// Validation order: magic, version, kind byte deferred to the caller's
/// decode, declared length against [`MAX_PAYLOAD`] *before* allocating.
///
/// # Errors
///
/// [`ProtocolError::Closed`] on a clean close before the first header
/// byte; [`ProtocolError::TimedOut`] when the transport's read timeout
/// expires before a frame starts; [`ProtocolError::Io`] on mid-frame
/// truncation or stall; the structural variants for header violations.
pub fn read_frame(r: &mut impl Read) -> Result<(u8, Vec<u8>), ProtocolError> {
    // First byte separately: EOF here is a clean close (and a read timeout
    // here just means "idle"), EOF later is a truncated frame.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(ProtocolError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(ProtocolError::TimedOut)
            }
            Err(e) => return Err(e.into()),
        }
    }
    let mut rest = [0u8; 7];
    read_exact_bounded(r, &mut rest, MID_FRAME_ATTEMPTS)?;
    let magic = [first[0], rest[0]];
    if magic != MAGIC {
        return Err(ProtocolError::BadMagic(magic));
    }
    if rest[1] != VERSION {
        return Err(ProtocolError::BadVersion(rest[1]));
    }
    let kind = rest[2];
    let len = u32::from_le_bytes(rest[3..7].try_into().expect("4 bytes"));
    if len > MAX_PAYLOAD {
        return Err(ProtocolError::Oversized(len));
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_bounded(r, &mut payload, MID_FRAME_ATTEMPTS)?;
    Ok((kind, payload))
}

/// Sends a request as one frame.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn send_request(w: &mut impl Write, request: &Request) -> std::io::Result<()> {
    write_frame(w, request.kind(), &request.payload())
}

/// Sends a response as one frame.
///
/// # Errors
///
/// Propagates transport I/O errors.
pub fn send_response(w: &mut impl Write, response: &Response) -> std::io::Result<()> {
    write_frame(w, response.kind(), &response.payload())
}

/// Receives and decodes one request frame.
///
/// # Errors
///
/// Any [`ProtocolError`] from framing or payload decoding.
pub fn recv_request(r: &mut impl Read) -> Result<Request, ProtocolError> {
    let (kind, payload) = read_frame(r)?;
    Request::decode(kind, &payload)
}

/// Receives and decodes one response frame.
///
/// # Errors
///
/// Any [`ProtocolError`] from framing or payload decoding.
pub fn recv_response(r: &mut impl Read) -> Result<Response, ProtocolError> {
    let (kind, payload) = read_frame(r)?;
    Response::decode(kind, &payload)
}
