//! Bounded job queue and job registry.
//!
//! The queue is the server's backpressure point: `try_push` never blocks —
//! a full queue is an immediate, explicit [`Response::Rejected`] to the
//! client rather than an invisible stall. The single executor thread
//! blocks on [`JobQueue::pop`] and drains whatever was accepted before the
//! queue was closed, which is exactly the graceful-shutdown contract.
//!
//! [`Response::Rejected`]: crate::protocol::Response::Rejected

use crate::protocol::JobState;
use adas_core::{CampaignSpec, CellStats};
use adas_parallel::MapControl;
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Progress/result event streamed from the executor to the submitting
/// connection handler.
#[derive(Debug)]
pub enum JobEvent {
    /// One cell finished (index into the submitted grid).
    Cell {
        /// Position in the campaign's cell list.
        index: u32,
        /// Aggregate statistics for the cell.
        stats: CellStats,
    },
    /// The job reached a terminal state; no further events follow.
    Finished(JobState),
}

/// One accepted campaign: the spec plus the shared progress / cancellation
/// state the executor, the status endpoint, and the submitting connection
/// all observe.
#[derive(Debug)]
pub struct Job {
    /// Server-assigned id.
    pub id: u64,
    /// Id used on streamed frames. Equal to `id` for local submissions;
    /// for fabric assignments it is the coordinator's `assignment_id`.
    pub wire_id: u64,
    /// For fabric assignments: `index_map[local]` is the coordinator-side
    /// global grid index streamed on the wire. `None` streams local
    /// indices (plain submissions).
    pub index_map: Option<Vec<u32>>,
    /// The submitted campaign.
    pub spec: CampaignSpec,
    /// Cancellation flag + live run counters (shared with `map_ctl`).
    pub ctl: MapControl,
    /// Lifecycle state.
    state: Mutex<JobState>,
    /// Cells fully finished (streamed or about to be).
    cells_done: std::sync::atomic::AtomicU32,
    /// Stream back to the submitting connection (dropped when it goes
    /// away; sends then fail and the executor cancels the job).
    pub events: Sender<JobEvent>,
    /// When the job entered the queue (queue-wait latency).
    pub enqueued: Instant,
}

impl Job {
    /// A freshly accepted job in [`JobState::Queued`].
    #[must_use]
    pub fn new(id: u64, spec: CampaignSpec, events: Sender<JobEvent>) -> Self {
        Self {
            id,
            wire_id: id,
            index_map: None,
            spec,
            ctl: MapControl::new(),
            state: Mutex::new(JobState::Queued),
            cells_done: std::sync::atomic::AtomicU32::new(0),
            events,
            enqueued: Instant::now(),
        }
    }

    /// A fabric assignment: streams under the coordinator's
    /// `assignment_id` and translates each local cell index through
    /// `index_map` (same length as `spec.cells`) so the wire carries
    /// global grid indices.
    #[must_use]
    pub fn assignment(
        id: u64,
        assignment_id: u64,
        index_map: Vec<u32>,
        spec: CampaignSpec,
        events: Sender<JobEvent>,
    ) -> Self {
        let mut job = Self::new(id, spec, events);
        job.wire_id = assignment_id;
        job.index_map = Some(index_map);
        job
    }

    /// The index streamed on the wire for local cell `local` (the global
    /// grid index for assignments, the local one otherwise).
    #[must_use]
    pub fn wire_index(&self, local: u32) -> u32 {
        match &self.index_map {
            Some(map) => map.get(local as usize).copied().unwrap_or(local),
            None => local,
        }
    }

    /// Current lifecycle state.
    #[must_use]
    pub fn state(&self) -> JobState {
        *self.state.lock().expect("job state lock")
    }

    /// Transitions the lifecycle state.
    pub fn set_state(&self, s: JobState) {
        *self.state.lock().expect("job state lock") = s;
    }

    /// Cells finished so far.
    #[must_use]
    pub fn cells_done(&self) -> u32 {
        self.cells_done.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Marks one more cell finished.
    pub fn bump_cells_done(&self) {
        self.cells_done
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Why `try_push` bounced a job.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError {
    /// The queue is at capacity — explicit backpressure.
    Full {
        /// Current capacity, for the client-facing message.
        capacity: usize,
    },
    /// The queue was closed (server shutting down).
    Closed,
}

struct QueueInner {
    items: VecDeque<Arc<Job>>,
    closed: bool,
}

/// Bounded MPSC job queue (mutex + condvar — `std` only).
pub struct JobQueue {
    inner: Mutex<QueueInner>,
    ready: Condvar,
    capacity: usize,
}

impl JobQueue {
    /// A queue holding at most `capacity` waiting jobs (minimum 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(QueueInner {
                items: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Jobs currently waiting (excludes the one being executed).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.lock().expect("queue lock").items.len()
    }

    /// True when no jobs are waiting.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking enqueue.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] when at capacity (backpressure),
    /// [`PushError::Closed`] after [`Self::close`].
    pub fn try_push(&self, job: Arc<Job>) -> Result<(), PushError> {
        let mut inner = self.inner.lock().expect("queue lock");
        if inner.closed {
            return Err(PushError::Closed);
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full {
                capacity: self.capacity,
            });
        }
        inner.items.push_back(job);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Blocking dequeue: waits for a job, returns `None` only once the
    /// queue is closed **and** drained — accepted work always executes.
    pub fn pop(&self) -> Option<Arc<Job>> {
        let mut inner = self.inner.lock().expect("queue lock");
        loop {
            if let Some(job) = inner.items.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).expect("queue wait");
        }
    }

    /// Closes the queue: future pushes fail, `pop` drains then returns
    /// `None`.
    pub fn close(&self) {
        self.inner.lock().expect("queue lock").closed = true;
        self.ready.notify_all();
    }
}

impl std::fmt::Debug for JobQueue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobQueue")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .finish()
    }
}

/// Id → job map so `Status` / `Cancel` work from any connection.
/// Terminal jobs are kept (bounded by [`Self::RETAIN`]) so a status query
/// right after completion still answers.
#[derive(Debug, Default)]
pub struct JobRegistry {
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
}

impl JobRegistry {
    /// Terminal jobs retained before the oldest are evicted.
    pub const RETAIN: usize = 256;

    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers an accepted job, evicting old terminal jobs beyond
    /// [`Self::RETAIN`].
    pub fn insert(&self, job: Arc<Job>) {
        let mut jobs = self.jobs.lock().expect("registry lock");
        if jobs.len() >= Self::RETAIN {
            let evict: Vec<u64> = jobs
                .iter()
                .filter(|(_, j)| j.state().is_terminal())
                .map(|(id, _)| *id)
                .collect();
            for id in evict {
                jobs.remove(&id);
            }
        }
        jobs.insert(job.id, job);
    }

    /// Looks up a job by id.
    #[must_use]
    pub fn get(&self, id: u64) -> Option<Arc<Job>> {
        self.jobs.lock().expect("registry lock").get(&id).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_core::CellSpec;
    use adas_core::InterventionConfig;
    use std::sync::mpsc::channel;

    fn job(id: u64) -> Arc<Job> {
        let spec = CampaignSpec::new(
            1,
            1,
            vec![CellSpec {
                fault: None,
                interventions: InterventionConfig::none(),
            }],
        );
        let (tx, _rx) = channel();
        Arc::new(Job::new(id, spec, tx))
    }

    #[test]
    fn full_queue_rejects_with_backpressure() {
        let q = JobQueue::new(1);
        assert!(q.try_push(job(1)).is_ok());
        assert_eq!(q.try_push(job(2)), Err(PushError::Full { capacity: 1 }));
        // Draining frees the slot.
        assert_eq!(q.pop().expect("job").id, 1);
        assert!(q.try_push(job(2)).is_ok());
    }

    #[test]
    fn closed_queue_drains_then_ends() {
        let q = JobQueue::new(4);
        q.try_push(job(1)).expect("push");
        q.try_push(job(2)).expect("push");
        q.close();
        assert_eq!(q.try_push(job(3)), Err(PushError::Closed));
        assert_eq!(q.pop().expect("drain 1").id, 1);
        assert_eq!(q.pop().expect("drain 2").id, 2);
        assert!(q.pop().is_none());
    }

    #[test]
    fn pop_wakes_on_close() {
        let q = Arc::new(JobQueue::new(1));
        let q2 = Arc::clone(&q);
        let waiter = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.close();
        assert!(waiter.join().expect("join").is_none());
    }

    #[test]
    fn registry_roundtrip_and_state() {
        let reg = JobRegistry::new();
        let j = job(7);
        reg.insert(Arc::clone(&j));
        let found = reg.get(7).expect("registered");
        assert_eq!(found.state(), JobState::Queued);
        found.set_state(JobState::Running);
        assert_eq!(j.state(), JobState::Running);
        assert!(reg.get(8).is_none());
    }
}
