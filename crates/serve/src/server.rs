//! The `adas-serve` daemon: accept loop, connection handlers, and the
//! campaign executor.
//!
//! One executor thread drains the bounded [`JobQueue`] and runs campaigns
//! one at a time; *within* a campaign each cell fans its sweep onto the
//! work-stealing executor (`adas_parallel::map_ctl`) with the job's
//! [`MapControl`] shared for cancellation and live progress. The trained
//! model and the content-addressed artifact cache are resident and shared
//! across every request, which is where the warm-path speedup comes from.
//!
//! Determinism: a cell computed here calls the same `run_single` with the
//! same per-run RNG derivation as the CLI harnesses, and the executor
//! merges results by index — outcomes are bit-identical to the CLI path at
//! any `ADAS_THREADS`.

use crate::metrics::ServeMetrics;
use crate::protocol::{
    recv_request, send_response, JobState, ProtocolError, ReplayOutcome, Request, Response,
};
use crate::queue::{Job, JobEvent, JobQueue, JobRegistry, PushError};
use crate::signal;
use crate::sink::{self, StoreSink};
use adas_fuzz::farm::{self, FuzzJobSpec};
use adas_bench::model_fingerprint;
use adas_core::job::CellSpec;
use adas_core::{
    replay_trace, run_single, run_single_traced, ArtifactCache, CampaignSpec, CellStats, RunId,
};
use adas_ml::{LstmPredictor, ModelSpec};
use adas_recorder::{RecordMode, Trace};
use std::collections::HashMap;
use std::io::Write;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Default listen address when `ADAS_SERVE_ADDR` is unset.
pub const DEFAULT_ADDR: &str = "127.0.0.1:4747";

/// Default job-queue capacity when `ADAS_SERVE_QUEUE` is unset.
pub const DEFAULT_QUEUE: usize = 8;

/// How long an idle connection read waits before re-checking shutdown.
const READ_TIMEOUT: Duration = Duration::from_millis(250);

/// Accept-loop poll interval while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Suggested client retry delay attached to backpressure rejections.
const RETRY_AFTER_MS: u32 = 500;

/// Server construction parameters.
#[derive(Debug)]
pub struct ServerConfig {
    /// Listen address (`host:port`; port 0 binds an ephemeral port).
    pub addr: String,
    /// Bounded job-queue capacity (≥ 1).
    pub queue_capacity: usize,
    /// Artifact cache shared by every request.
    pub cache: ArtifactCache,
    /// Directory `Replay` requests resolve trace hashes in.
    pub trace_dir: PathBuf,
    /// Architecture of the lazily trained resident models. Production
    /// servers keep the paper's default; tests shrink it so an in-process
    /// server trains in milliseconds.
    pub model_spec: ModelSpec,
}

impl ServerConfig {
    /// Configuration from `ADAS_SERVE_ADDR`, `ADAS_SERVE_QUEUE`,
    /// `ADAS_CACHE`/`ADAS_CACHE_DIR`, and `ADAS_TRACE_DIR` (all through the
    /// hardened `adas_core::env` parsers).
    #[must_use]
    pub fn from_env() -> Self {
        Self {
            addr: adas_core::env::raw("ADAS_SERVE_ADDR")
                .unwrap_or_else(|| DEFAULT_ADDR.to_owned()),
            queue_capacity: adas_core::env::parse_or(
                "ADAS_SERVE_QUEUE",
                "a queue capacity ≥ 1",
                DEFAULT_QUEUE,
            )
            .max(1),
            cache: ArtifactCache::from_env(),
            trace_dir: adas_core::env::path_or("ADAS_TRACE_DIR", "results/traces"),
            model_spec: ModelSpec::default(),
        }
    }
}

/// State shared by the accept loop, every connection handler, and the
/// executor.
pub struct Shared {
    queue: JobQueue,
    registry: JobRegistry,
    metrics: ServeMetrics,
    cache: ArtifactCache,
    trace_dir: PathBuf,
    /// Resident trained models, keyed by campaign seed (trained lazily on
    /// first use, then shared by `Arc` across all requests).
    models: Mutex<HashMap<u64, Arc<LstmPredictor>>>,
    /// In-memory cell-result memo keyed by cell fingerprint — the warmest
    /// tier above the on-disk artifact cache.
    memo: Mutex<HashMap<u64, CellStats>>,
    /// Architecture the resident models are trained at.
    model_spec: ModelSpec,
    /// Optional `ADAS_STORE_DIR` write-through for cells and findings.
    store_sink: StoreSink,
    shutdown: AtomicBool,
    job_ids: AtomicU64,
}

impl Shared {
    fn new(config: ServerConfig) -> Self {
        Self {
            queue: JobQueue::new(config.queue_capacity),
            registry: JobRegistry::new(),
            metrics: ServeMetrics::new(),
            cache: config.cache,
            trace_dir: config.trace_dir,
            models: Mutex::new(HashMap::new()),
            memo: Mutex::new(HashMap::new()),
            model_spec: config.model_spec,
            store_sink: StoreSink::from_env(),
            shutdown: AtomicBool::new(false),
            job_ids: AtomicU64::new(1),
        }
    }

    fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed) || signal::triggered()
    }

    /// Stops accepting work and lets the executor drain what was accepted.
    fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
        self.queue.close();
    }

    /// The trained model for `campaign_seed`, training (or loading from
    /// the artifact cache) on first use. Concurrent first calls may train
    /// twice; training is deterministic, so both produce identical weights
    /// and the loser just overwrites with an equal value.
    fn model_for(&self, campaign_seed: u64) -> Arc<LstmPredictor> {
        if let Some(m) = self.models.lock().expect("models lock").get(&campaign_seed) {
            return Arc::clone(m);
        }
        let t0 = Instant::now();
        let model = Arc::new(adas_bench::trained_baseline_cached(
            &self.cache,
            campaign_seed,
            self.model_spec,
        ));
        self.metrics.model_train.record(t0.elapsed());
        self.models
            .lock()
            .expect("models lock")
            .insert(campaign_seed, Arc::clone(&model));
        model
    }
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("queue", &self.queue)
            .field("shutdown", &self.shutdown)
            .finish_non_exhaustive()
    }
}

/// A bound, not-yet-running server.
#[derive(Debug)]
pub struct Server {
    listener: TcpListener,
    shared: Arc<Shared>,
}

impl Server {
    /// Binds the listen socket (fails fast on a busy port).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Self {
            listener,
            shared: Arc::new(Shared::new(config)),
        })
    }

    /// The bound address (resolves port 0 to the actual ephemeral port).
    ///
    /// # Errors
    ///
    /// Propagates the socket query failure.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Runs the daemon until a `Shutdown` request or SIGTERM/SIGINT, then
    /// drains in-flight jobs and returns.
    ///
    /// # Errors
    ///
    /// Propagates fatal listener errors (per-connection errors are
    /// handled inline).
    pub fn run(self) -> std::io::Result<()> {
        signal::install();
        self.listener.set_nonblocking(true)?;
        let shared = Arc::clone(&self.shared);
        let executor = std::thread::Builder::new()
            .name("adas-serve-exec".into())
            .spawn(move || executor_loop(&shared))
            .expect("spawn executor");

        let mut handlers: Vec<std::thread::JoinHandle<()>> = Vec::new();
        loop {
            if self.shared.is_shutdown() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let shared = Arc::clone(&self.shared);
                    let handle = std::thread::Builder::new()
                        .name("adas-serve-conn".into())
                        .spawn(move || handle_connection(&shared, stream))
                        .expect("spawn connection handler");
                    handlers.push(handle);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => {
                    eprintln!("[serve] accept error: {e}");
                    std::thread::sleep(ACCEPT_POLL);
                }
            }
            // Reap finished connection threads so the vector stays small.
            let mut i = 0;
            while i < handlers.len() {
                if handlers[i].is_finished() {
                    let _ = handlers.swap_remove(i).join();
                } else {
                    i += 1;
                }
            }
        }

        // Drain: the executor finishes every accepted job, which releases
        // the streaming handlers; idle handlers notice shutdown within one
        // read timeout.
        self.shared.begin_shutdown();
        let _ = executor.join();
        for handle in handlers {
            let _ = handle.join();
        }
        Ok(())
    }
}

/// Executor thread: drains the queue until it is closed *and* empty.
fn executor_loop(shared: &Shared) {
    while let Some(job) = shared.queue.pop() {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            execute_job(shared, &job);
        }));
        if result.is_err() {
            // A panicking cell must not wedge the daemon: mark the job
            // failed, tell the client, keep serving.
            eprintln!("[serve] job {} panicked; marked failed", job.id);
            job.set_state(JobState::Failed);
            shared.metrics.jobs_failed.fetch_add(1, Ordering::Relaxed);
            let _ = job.events.send(JobEvent::Finished(JobState::Failed));
        }
        shared.metrics.set_gauges(shared.queue.len(), 0);
    }
}

/// Runs one accepted campaign, streaming each finished cell to the
/// submitting connection.
fn execute_job(shared: &Shared, job: &Arc<Job>) {
    shared.metrics.queue_wait.record(job.enqueued.elapsed());
    shared.metrics.set_gauges(shared.queue.len(), 1);
    job.set_state(JobState::Running);
    let spec = &job.spec;
    // Train (or fetch) the resident model once per job, not per cell.
    let model = spec
        .cells
        .iter()
        .any(|c| c.interventions.ml)
        .then(|| shared.model_for(spec.campaign_seed));
    let ids = spec.run_ids();

    let mut outcome = JobState::Done;
    // Store write-through batches the whole grid into one append (one
    // segment per job, not one per cell).
    let mut store_rows = Vec::new();
    for (index, cell) in spec.cells.iter().enumerate() {
        if job.ctl.is_cancelled() {
            outcome = JobState::Cancelled;
            break;
        }
        let t0 = Instant::now();
        let Some(stats) = compute_cell(shared, spec, cell, &ids, model.as_ref(), job) else {
            outcome = JobState::Cancelled;
            break;
        };
        shared.metrics.cell_wall.record(t0.elapsed());
        shared.metrics.cells_done.fetch_add(1, Ordering::Relaxed);
        if shared.store_sink.enabled() {
            store_rows.push(sink::cell_row(spec, cell, &stats));
        }
        job.bump_cells_done();
        // Fabric assignments stream the coordinator's global grid index.
        let sent = job.events.send(JobEvent::Cell {
            index: job.wire_index(index as u32),
            stats,
        });
        if sent.is_err() {
            // The submitting client is gone — stop burning compute.
            job.ctl.cancel();
            outcome = JobState::Cancelled;
            break;
        }
    }

    shared.store_sink.cells(&store_rows);
    job.set_state(outcome);
    let counter = match outcome {
        JobState::Done => &shared.metrics.jobs_done,
        JobState::Cancelled => &shared.metrics.jobs_cancelled,
        _ => &shared.metrics.jobs_failed,
    };
    counter.fetch_add(1, Ordering::Relaxed);
    let _ = job.events.send(JobEvent::Finished(outcome));
}

/// One cell's statistics, through the memo → artifact-cache → compute
/// tiers. `None` means the job was cancelled mid-sweep.
fn compute_cell(
    shared: &Shared,
    spec: &CampaignSpec,
    cell: &CellSpec,
    ids: &[RunId],
    model: Option<&Arc<LstmPredictor>>,
    job: &Arc<Job>,
) -> Option<CellStats> {
    let model_used = if cell.interventions.ml { model } else { None };
    let key = spec.cell_key(cell, model_used.map(|m| model_fingerprint(m)));

    if let Some(stats) = shared.memo.lock().expect("memo lock").get(&key.value()) {
        shared.metrics.cells_memo_hits.fetch_add(1, Ordering::Relaxed);
        return Some(stats.clone());
    }
    if let Some(stats) = shared
        .cache
        .load("cell", key)
        .and_then(|bytes| CellStats::from_bytes(&bytes))
    {
        shared.metrics.cells_disk_hits.fetch_add(1, Ordering::Relaxed);
        shared
            .memo
            .lock()
            .expect("memo lock")
            .insert(key.value(), stats.clone());
        return Some(stats);
    }

    let config = spec.config_for(cell);
    // Scalar or lockstep-batched per `ADAS_BATCH` — bit-identical results
    // either way; `job.ctl` still cancels (at chunk granularity when
    // batched).
    let records = adas_core::run_ids_ctl(
        ids,
        cell.fault,
        &config,
        model_used,
        spec.campaign_seed,
        adas_parallel::batch_width(),
        &job.ctl,
    )?;
    shared
        .metrics
        .runs_executed
        .fetch_add(records.len() as u64, Ordering::Relaxed);
    // Per-tier accounting: `computed` is a genuine miss-then-fill of the
    // disk tier; with the disk cache disabled the compute bypassed it.
    if shared.cache.is_enabled() {
        shared.metrics.cells_computed.fetch_add(1, Ordering::Relaxed);
    } else {
        shared.metrics.cells_bypass.fetch_add(1, Ordering::Relaxed);
    }
    let stats = CellStats::from_records(&records);
    shared.cache.store("cell", key, &stats.to_bytes());
    shared
        .memo
        .lock()
        .expect("memo lock")
        .insert(key.value(), stats.clone());
    Some(stats)
}

/// Per-connection loop: request → response(s) until close, protocol
/// violation, or shutdown.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    shared.metrics.connections.fetch_add(1, Ordering::Relaxed);
    if stream.set_read_timeout(Some(READ_TIMEOUT)).is_err() || stream.set_nodelay(true).is_err() {
        return;
    }
    let mut stream = stream;
    loop {
        match recv_request(&mut stream) {
            Ok(request) => match handle_request(shared, &mut stream, request) {
                Ok(true) => {}
                Ok(false) | Err(_) => break,
            },
            Err(ProtocolError::TimedOut) => {
                if shared.is_shutdown() {
                    break;
                }
            }
            Err(ProtocolError::Closed | ProtocolError::Io(_)) => break,
            Err(e) => {
                // Structural violation: count it, answer it, and drop the
                // connection — after a framing error the byte stream can
                // no longer be trusted to resynchronise.
                shared.metrics.protocol_errors.fetch_add(1, Ordering::Relaxed);
                let _ = send_response(&mut stream, &Response::Error(e.to_string()));
                break;
            }
        }
    }
}

/// Dispatches one request. `Ok(false)` closes the connection politely.
fn handle_request(
    shared: &Shared,
    stream: &mut (impl Write + std::io::Read),
    request: Request,
) -> std::io::Result<bool> {
    match request {
        Request::SubmitCampaign(spec) => handle_submit(shared, stream, spec),
        Request::SubmitCell {
            campaign_seed,
            max_steps,
            run,
            cell,
            with_trace,
        } => {
            shared.metrics.single_runs.fetch_add(1, Ordering::Relaxed);
            let response = run_one_cell(shared, campaign_seed, max_steps, run, &cell, with_trace);
            send_response(stream, &response)?;
            Ok(true)
        }
        Request::Replay { trace_hex } => {
            shared.metrics.replays.fetch_add(1, Ordering::Relaxed);
            let (outcome, detail) = verify_trace(shared, &trace_hex);
            send_response(stream, &Response::ReplayVerdict { outcome, detail })?;
            Ok(true)
        }
        Request::Status { job_id } => {
            let response = match shared.registry.get(job_id) {
                Some(job) => status_of(&job),
                None => Response::Error(format!("unknown job {job_id}")),
            };
            send_response(stream, &response)?;
            Ok(true)
        }
        Request::Cancel { job_id } => {
            let response = match shared.registry.get(job_id) {
                Some(job) => {
                    job.ctl.cancel();
                    status_of(&job)
                }
                None => Response::Error(format!("unknown job {job_id}")),
            };
            send_response(stream, &response)?;
            Ok(true)
        }
        Request::Metrics => {
            let json = shared.metrics.snapshot_json(
                &shared.cache,
                shared.queue.len(),
                shared.queue.capacity(),
            );
            send_response(stream, &Response::MetricsJson(json))?;
            Ok(true)
        }
        Request::Shutdown => {
            send_response(stream, &Response::ShutdownAck)?;
            shared.begin_shutdown();
            Ok(false)
        }
        Request::RegisterWorker { fleet_epoch: _ } => {
            shared
                .metrics
                .workers_registered
                .fetch_add(1, Ordering::Relaxed);
            let memo_cells = shared.memo.lock().expect("memo lock").len() as u64;
            send_response(
                stream,
                &Response::WorkerHello {
                    queue_capacity: shared.queue.capacity() as u32,
                    threads: adas_parallel::thread_count(usize::MAX) as u32,
                    batch_width: adas_parallel::batch_width() as u32,
                    memo_cells,
                },
            )?;
            Ok(true)
        }
        Request::Heartbeat { nonce } => {
            shared.metrics.heartbeats.fetch_add(1, Ordering::Relaxed);
            let (_, running) = shared.metrics.gauges();
            send_response(
                stream,
                &Response::HeartbeatAck {
                    nonce,
                    queued: shared.queue.len() as u32,
                    running: running as u32,
                },
            )?;
            Ok(true)
        }
        Request::AssignCells {
            assignment_id,
            indices,
            spec,
        } => {
            shared.metrics.assignments.fetch_add(1, Ordering::Relaxed);
            handle_assign(shared, stream, assignment_id, indices, spec)
        }
        Request::WorkerDrain => {
            shared.metrics.worker_drains.fetch_add(1, Ordering::Relaxed);
            send_response(stream, &Response::ShutdownAck)?;
            shared.begin_shutdown();
            Ok(false)
        }
        Request::SubmitFuzz(spec) => handle_fuzz(shared, stream, None, &spec),
        Request::AssignFuzz {
            assignment_id,
            spec,
        } => handle_fuzz(shared, stream, Some(assignment_id), &spec),
    }
}

/// Runs a fuzz-farm job (or a coordinator-assigned slice of one)
/// synchronously on this connection: `Accepted`, one `FuzzResult` per
/// seed in spec order, `JobDone`. Sessions are CPU-bound and internally
/// parallel (the engine fans batches onto the work-stealing executor), so
/// they run here rather than through the campaign queue — a farm worker
/// is dedicated to fuzzing while the job lasts.
fn handle_fuzz(
    shared: &Shared,
    stream: &mut impl Write,
    assignment: Option<u64>,
    spec: &FuzzJobSpec,
) -> std::io::Result<bool> {
    if !spec.validate() {
        send_response(stream, &Response::Error("invalid fuzz job spec".into()))?;
        return Ok(true);
    }
    let job_id = assignment
        .unwrap_or_else(|| shared.job_ids.fetch_add(1, Ordering::Relaxed));
    shared.metrics.fuzz_jobs.fetch_add(1, Ordering::Relaxed);
    send_response(
        stream,
        &Response::Accepted {
            job_id,
            cells: spec.seeds.len() as u32,
        },
    )?;

    let mut outcomes = Vec::with_capacity(spec.seeds.len());
    let mut state = JobState::Done;
    for &seed in &spec.seeds {
        if shared.is_shutdown() {
            state = JobState::Cancelled;
            break;
        }
        let t0 = Instant::now();
        let outcome = farm::run_session(spec, seed);
        shared.metrics.fuzz_session_wall.record(t0.elapsed());
        shared.metrics.fuzz_sessions.fetch_add(1, Ordering::Relaxed);
        shared
            .metrics
            .fuzz_runs
            .fetch_add(outcome.runs, Ordering::Relaxed);
        shared
            .metrics
            .fuzz_corpus
            .fetch_add(outcome.corpus, Ordering::Relaxed);
        let sent = send_response(
            stream,
            &Response::FuzzResult {
                job_id,
                outcome: outcome.clone(),
            },
        );
        if sent.is_err() {
            // Submitter gone: stop fuzzing, nothing left to stream to.
            return Ok(false);
        }
        outcomes.push(outcome);
    }

    // Local fold: feeds the fleet metrics and the store write-through.
    // (A coordinator folds across *all* workers itself — same code, so
    // its global fold subsumes these per-worker ones.)
    let summary = farm::fold(spec, &outcomes);
    shared
        .metrics
        .fuzz_findings
        .fetch_add(summary.findings.len() as u64, Ordering::Relaxed);
    shared
        .metrics
        .fuzz_dedup_hits
        .fetch_add(summary.dedup_hits, Ordering::Relaxed);
    for (slot, n) in shared.metrics.fuzz_by_oracle.iter().zip(summary.by_oracle()) {
        slot.fetch_add(n, Ordering::Relaxed);
    }
    // Only direct submissions persist: a coordinator-assigned slice would
    // double-write rows the coordinator's global fold also persists.
    if assignment.is_none() {
        let rows: Vec<_> = summary.findings.iter().map(sink::finding_row).collect();
        shared.store_sink.findings(&rows);
    }
    send_response(stream, &Response::JobDone { job_id, state })?;
    Ok(true)
}

/// Accepts a campaign into the queue (or bounces it with backpressure) and
/// streams its results back on this connection.
fn handle_submit(
    shared: &Shared,
    stream: &mut impl Write,
    spec: CampaignSpec,
) -> std::io::Result<bool> {
    if !spec.validate() {
        send_response(stream, &Response::Error("invalid campaign spec".into()))?;
        return Ok(true);
    }
    let (events, results) = channel();
    let job_id = shared.job_ids.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job::new(job_id, spec, events));
    enqueue_and_stream(shared, stream, job, &results)
}

/// Accepts a fabric cell assignment: same queue/executor/cache tiers as a
/// local submission, but streaming under the coordinator's assignment id
/// with global grid indices.
fn handle_assign(
    shared: &Shared,
    stream: &mut impl Write,
    assignment_id: u64,
    indices: Vec<u32>,
    spec: CampaignSpec,
) -> std::io::Result<bool> {
    // The protocol decoder already enforced the index/cell pairing; the
    // spec itself must still be a valid (sub-)campaign.
    if !spec.validate() || indices.len() != spec.cells.len() {
        send_response(stream, &Response::Error("invalid cell assignment".into()))?;
        return Ok(true);
    }
    let (events, results) = channel();
    let job_id = shared.job_ids.fetch_add(1, Ordering::Relaxed);
    let job = Arc::new(Job::assignment(job_id, assignment_id, indices, spec, events));
    enqueue_and_stream(shared, stream, job, &results)
}

/// Shared tail of `handle_submit` / `handle_assign`: push the job through
/// the bounded queue (explicit backpressure on a full queue) and stream
/// its events back on this connection.
fn enqueue_and_stream(
    shared: &Shared,
    stream: &mut impl Write,
    job: Arc<Job>,
    results: &std::sync::mpsc::Receiver<JobEvent>,
) -> std::io::Result<bool> {
    let wire_id = job.wire_id;
    let cells = job.spec.cells.len() as u32;
    match shared.queue.try_push(Arc::clone(&job)) {
        Err(PushError::Full { capacity }) => {
            shared.metrics.jobs_rejected.fetch_add(1, Ordering::Relaxed);
            send_response(
                stream,
                &Response::Rejected {
                    retry_after_ms: RETRY_AFTER_MS,
                    reason: format!("job queue full ({capacity} waiting)"),
                },
            )?;
            return Ok(true);
        }
        Err(PushError::Closed) => {
            send_response(
                stream,
                &Response::Rejected {
                    retry_after_ms: 0,
                    reason: "server is shutting down".into(),
                },
            )?;
            return Ok(true);
        }
        Ok(()) => {}
    }

    shared.registry.insert(Arc::clone(&job));
    shared.metrics.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    shared.metrics.set_gauges(shared.queue.len(), usize::from(job.state() == JobState::Running));
    send_response(
        stream,
        &Response::Accepted {
            job_id: wire_id,
            cells,
        },
    )?;

    // Stream cells as the executor finishes them. The executor always
    // terminates the stream with `Finished`, including for drained or
    // cancelled jobs, so this loop cannot hang.
    loop {
        match results.recv() {
            Ok(JobEvent::Cell { index, stats }) => {
                let sent = send_response(
                    stream,
                    &Response::CellResult {
                        job_id: wire_id,
                        cell_index: index,
                        stats,
                    },
                );
                if sent.is_err() {
                    // Client went away mid-stream: stop the job.
                    job.ctl.cancel();
                    return Ok(false);
                }
            }
            Ok(JobEvent::Finished(state)) => {
                send_response(stream, &Response::JobDone { job_id: wire_id, state })?;
                return Ok(true);
            }
            // Sender dropped without Finished — executor died; fail loudly.
            Err(_) => {
                send_response(
                    stream,
                    &Response::JobDone {
                        job_id: wire_id,
                        state: JobState::Failed,
                    },
                )?;
                return Ok(true);
            }
        }
    }
}

/// Builds the status response for a job.
fn status_of(job: &Job) -> Response {
    Response::StatusReport {
        state: job.state(),
        cells_done: job.cells_done(),
        cells_total: job.spec.cells.len() as u32,
        runs_done: job.ctl.completed() as u64,
    }
}

/// Executes one fully-specified run synchronously.
fn run_one_cell(
    shared: &Shared,
    campaign_seed: u64,
    max_steps: u32,
    run: RunId,
    cell: &CellSpec,
    with_trace: bool,
) -> Response {
    let mut config = adas_core::PlatformConfig::with_interventions(cell.interventions);
    if max_steps != 0 {
        config.max_steps = max_steps as usize;
    }
    let model = cell.interventions.ml.then(|| shared.model_for(campaign_seed));
    if with_trace {
        let fp = model.as_ref().map_or(0, |m| model_fingerprint(m).value());
        let (record, trace) = run_single_traced(
            run,
            cell.fault,
            &config,
            model.as_ref(),
            fp,
            campaign_seed,
            RecordMode::Full,
        );
        Response::RunResult {
            record,
            trace: Some(trace.to_bytes()),
        }
    } else {
        let record = run_single(run, cell.fault, &config, model.as_ref(), campaign_seed);
        Response::RunResult {
            record,
            trace: None,
        }
    }
}

/// Resolves a trace hash in the server's trace directory and verifies it
/// by bit-exact re-execution.
fn verify_trace(shared: &Shared, trace_hex: &str) -> (ReplayOutcome, String) {
    let Some(path) = Trace::path_for(&shared.trace_dir, trace_hex) else {
        return (
            ReplayOutcome::NotFound,
            format!("malformed trace hash {trace_hex:?} (want 16 lowercase hex digits)"),
        );
    };
    if !path.exists() {
        return (
            ReplayOutcome::NotFound,
            format!("no trace {trace_hex} under {}", shared.trace_dir.display()),
        );
    }
    let trace = match Trace::load(&path) {
        Ok(t) => t,
        Err(e) => return (ReplayOutcome::Error, format!("cannot load trace: {e}")),
    };
    // Supply the resident model when the recording demands one we have.
    let needed = trace.header.model_fingerprint;
    let models = shared.models.lock().expect("models lock");
    let ml = (needed != 0)
        .then(|| {
            models
                .values()
                .find(|m| model_fingerprint(m).value() == needed)
                .map(|m| (m, needed))
        })
        .flatten();
    match replay_trace(&trace, ml, None) {
        Ok(report) if report.report.is_identical() => {
            (ReplayOutcome::Identical, trace.identity())
        }
        Ok(report) => {
            let mut detail = report.report.verdict.to_string();
            if let Some(outcome) = &report.report.outcome_mismatch {
                detail.push_str(&format!("; outcome mismatch: {outcome}"));
            }
            (ReplayOutcome::Diverged, detail)
        }
        Err(e) => (ReplayOutcome::Error, e.to_string()),
    }
}
