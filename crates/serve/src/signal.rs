//! Minimal SIGTERM / SIGINT hook for graceful shutdown.
//!
//! The workspace is offline (no `libc`/`signal-hook` crates), so on Unix
//! this binds `signal(2)` from the already-linked C library directly. The
//! handler only stores into a static atomic — the one thing that is
//! unconditionally async-signal-safe — and the accept loop polls
//! [`triggered`] between accepts.

use std::sync::atomic::{AtomicBool, Ordering};

static TRIGGERED: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been received (or [`trigger`] called).
#[must_use]
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::Relaxed)
}

/// Programmatic equivalent of receiving a termination signal (tests, and
/// the in-process `Shutdown` request path).
pub fn trigger() {
    TRIGGERED.store(true, Ordering::Relaxed);
}

/// Installs the handler for SIGTERM and SIGINT. Idempotent; a no-op on
/// non-Unix targets (ctrl-c then terminates the process the default way).
#[cfg(unix)]
#[allow(unsafe_code)]
pub fn install() {
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" fn on_signal(_signum: i32) {
        TRIGGERED.store(true, Ordering::Relaxed);
    }

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
    }

    // SAFETY: `signal(2)` with a handler that performs a single atomic
    // store; both arguments are valid for the lifetime of the process.
    unsafe {
        signal(SIGINT, on_signal as *const () as usize);
        signal(SIGTERM, on_signal as *const () as usize);
    }
}

/// Non-Unix fallback: no handler is installed.
#[cfg(not(unix))]
pub fn install() {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_flips_the_flag() {
        install();
        // The flag may already be set if another test triggered it; this
        // test only asserts the set path (the flag is process-global).
        trigger();
        assert!(triggered());
    }
}
