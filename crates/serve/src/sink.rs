//! Optional write-through to the columnar results store.
//!
//! When `ADAS_STORE_DIR` is set, the daemon (and, through it, the fabric
//! coordinator) appends every finished campaign cell and every deduped
//! fuzz finding to the append-only store, so `adas-store query` can
//! answer Table VI/VII-style aggregates across everything the fleet has
//! ever computed. The sink is strictly best-effort: a full disk or a bad
//! directory logs one line and drops the rows — it never fails the job
//! that produced them.

use adas_fuzz::farm::FarmFinding;
use adas_store::{CellRow, FindingRow, Store};
use std::sync::Mutex;

/// A lazily-opened, error-absorbing handle on the results store.
pub struct StoreSink {
    /// `None` when `ADAS_STORE_DIR` is unset (the common case).
    store: Option<Store>,
    /// Rows appended so far (cells, findings) — surfaced in metrics.
    appended: Mutex<(u64, u64)>,
}

impl std::fmt::Debug for StoreSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoreSink")
            .field("enabled", &self.store.is_some())
            .finish_non_exhaustive()
    }
}

impl StoreSink {
    /// A sink on `ADAS_STORE_DIR`, disabled when the variable is unset or
    /// the directory cannot be created (logged, not fatal).
    #[must_use]
    pub fn from_env() -> Self {
        let store = adas_store::dir_from_env().and_then(|dir| match Store::open(&dir) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("[serve] store write-through disabled: {e}");
                None
            }
        });
        Self {
            store,
            appended: Mutex::new((0, 0)),
        }
    }

    /// A sink that drops everything (tests, store-less deployments).
    #[must_use]
    pub fn disabled() -> Self {
        Self {
            store: None,
            appended: Mutex::new((0, 0)),
        }
    }

    /// Whether rows will actually be persisted.
    #[must_use]
    pub fn enabled(&self) -> bool {
        self.store.is_some()
    }

    /// `(cell_rows, finding_rows)` appended so far.
    #[must_use]
    pub fn appended(&self) -> (u64, u64) {
        *self.appended.lock().expect("sink lock")
    }

    /// Appends finished-cell rows (one fresh segment per call — campaign
    /// jobs batch a whole grid into one append).
    pub fn cells(&self, rows: &[CellRow]) {
        let Some(store) = &self.store else { return };
        if rows.is_empty() {
            return;
        }
        match store.append_cells(rows) {
            Ok(_) => self.appended.lock().expect("sink lock").0 += rows.len() as u64,
            Err(e) => eprintln!("[serve] store cell append failed: {e}"),
        }
    }

    /// Appends deduped fuzz-finding rows.
    pub fn findings(&self, rows: &[FindingRow]) {
        let Some(store) = &self.store else { return };
        if rows.is_empty() {
            return;
        }
        match store.append_findings(rows) {
            Ok(_) => self.appended.lock().expect("sink lock").1 += rows.len() as u64,
            Err(e) => eprintln!("[serve] store finding append failed: {e}"),
        }
    }
}

/// Flattens a farm finding into its columnar row. The eight continuous
/// parameters land in `FuzzCase` declaration order, bit-exact.
#[must_use]
pub fn finding_row(f: &FarmFinding) -> FindingRow {
    use adas_attack::FaultType;
    let c = &f.shrunk;
    FindingRow {
        oracle: f.oracle.code() as u8,
        scenario: c.scenario.index() as u8,
        position: c.position.index() as u8,
        fault: match c.fault {
            None => 0,
            Some(FaultType::RelativeDistance) => 1,
            Some(FaultType::DesiredCurvature) => 2,
            Some(FaultType::Mixed) => 3,
        },
        iv_row: c.iv_row as u8,
        sched: adas_fuzz::coverage::sched_bucket(c.sched_ttc) as u8,
        session_seed: f.session_seed,
        signature: f.signature,
        fingerprint: c.fingerprint(),
        repetition: c.repetition,
        params: [
            c.ego_speed_delta,
            c.friction,
            c.attack_start_offset,
            c.attack_duration,
            c.attack_intensity,
            c.attack_direction,
            c.trigger_offset,
            c.sched_ttc,
        ],
    }
}

/// Builds the columnar row for one finished campaign cell. Campaign cells
/// aggregate over every scenario × position in the sweep, so those axes
/// are [`adas_store::record::ANY`]; the intervention row is recovered by
/// matching against the Table VI rows (`ANY` for off-grid configs).
#[must_use]
pub fn cell_row(
    spec: &adas_core::CampaignSpec,
    cell: &adas_core::job::CellSpec,
    stats: &adas_core::CellStats,
) -> CellRow {
    use adas_store::record::ANY;
    let fault = match cell.fault {
        None => 0,
        Some(adas_attack::FaultType::RelativeDistance) => 1,
        Some(adas_attack::FaultType::DesiredCurvature) => 2,
        Some(adas_attack::FaultType::Mixed) => 3,
    };
    let iv_row = adas_core::InterventionConfig::table_vi_rows()
        .iter()
        .position(|row| *row == cell.interventions)
        .map_or(ANY, |i| i as u8);
    let mitigation = match cell.interventions.mitigation {
        adas_ml::MitigationKind::Cusum => 0,
        adas_ml::MitigationKind::Ensemble => 1,
        adas_ml::MitigationKind::MaskCheck => 2,
    };
    CellRow::from_stats(
        (
            ANY,
            ANY,
            fault,
            iv_row,
            mitigation,
            u8::from(!spec.attack.is_immediate()),
        ),
        spec.campaign_seed,
        stats,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use adas_fuzz::case::FuzzCase;
    use adas_fuzz::OracleKind;
    use adas_scenarios::{InitialPosition, ScenarioId};

    #[test]
    fn finding_row_is_bit_exact() {
        let mut case = FuzzCase::baseline(
            ScenarioId::S3,
            InitialPosition::Far,
            4,
            Some(adas_attack::FaultType::DesiredCurvature),
        );
        case.friction = 0.300_000_000_000_000_04;
        case.sched_ttc = 2.0;
        let f = FarmFinding {
            session_seed: 9,
            oracle: OracleKind::MetamorphicShift,
            shrunk: case,
            detail: "d".into(),
            signature: 1234,
            trace: vec![],
        };
        let row = finding_row(&f);
        assert_eq!(row.oracle, 4);
        assert_eq!(row.scenario, 2);
        assert_eq!(row.position, 1);
        assert_eq!(row.fault, 2);
        assert_eq!(row.iv_row, 4);
        assert_eq!(row.sched, 2);
        assert_eq!(row.fingerprint, case.fingerprint());
        assert_eq!(row.params[1].to_bits(), case.friction.to_bits());
        assert_eq!(row.params[7], 2.0);
    }

    #[test]
    fn cell_row_recovers_grid_coordinates() {
        let rows = adas_core::InterventionConfig::table_vi_rows();
        let spec = adas_core::CampaignSpec::new(
            77,
            2,
            vec![adas_core::job::CellSpec {
                fault: Some(adas_attack::FaultType::Mixed),
                interventions: rows[3],
            }],
        );
        let stats = adas_core::CellStats {
            runs: 24,
            a1_pct: 25.0,
            a2_pct: 0.0,
            prevented_pct: 75.0,
            hazard_pct: 50.0,
            aeb_mitigation_time: Some(1.5),
            driver_brake_mitigation_time: None,
            driver_steer_mitigation_time: None,
            aeb_trigger_rate: 50.0,
            driver_brake_trigger_rate: 0.0,
            driver_steer_trigger_rate: 0.0,
            ml_trigger_rate: 0.0,
        };
        let row = cell_row(&spec, &spec.cells[0], &stats);
        assert_eq!(row.scenario, adas_store::record::ANY);
        assert_eq!(row.fault, 3);
        assert_eq!(row.iv_row, 3);
        assert_eq!(row.sched, 0);
        assert_eq!(row.seed, 77);
        assert_eq!(row.runs, 24);
        assert_eq!(row.a1 + row.a2 + row.prevented, 24);
    }

    #[test]
    fn disabled_sink_swallows_everything() {
        let sink = StoreSink::disabled();
        assert!(!sink.enabled());
        sink.cells(&[]);
        sink.findings(&[]);
        assert_eq!(sink.appended(), (0, 0));
    }
}
