//! Wire-protocol property tests: every frame round-trips byte-exactly,
//! and malformed frames (truncated, oversized, wrong version, mutated)
//! produce protocol errors — never panics, never unbounded allocation.

use adas_attack::FaultType;
use adas_core::job::CellSpec;
use adas_core::{CampaignSpec, CellStats, InterventionConfig, RunId, SCENARIO_MASK_ALL};
use adas_safety::AebsMode;
use adas_scenarios::{AccidentKind, InitialPosition, RunRecord, ScenarioId};
use adas_serve::protocol::{
    read_frame, write_frame, JobState, ProtocolError, ReplayOutcome, Request, Response,
    MAX_PAYLOAD, VERSION,
};
use proptest::prelude::*;

// --- generators -----------------------------------------------------------

fn arb_cell(rng: &mut TestRng) -> CellSpec {
    let fault = match rng.usize_in(0, 4) {
        0 => None,
        1 => Some(FaultType::RelativeDistance),
        2 => Some(FaultType::DesiredCurvature),
        _ => Some(FaultType::Mixed),
    };
    let aebs = match rng.usize_in(0, 3) {
        0 => AebsMode::Disabled,
        1 => AebsMode::Compromised,
        _ => AebsMode::Independent,
    };
    let mitigation = match rng.usize_in(0, 3) {
        0 => adas_core::MitigationKind::Cusum,
        1 => adas_core::MitigationKind::Ensemble,
        _ => adas_core::MitigationKind::MaskCheck,
    };
    CellSpec {
        fault,
        interventions: InterventionConfig {
            driver: rng.next_u64() & 1 == 1,
            driver_reaction_time: 0.5 + rng.unit_f64() * 3.0,
            safety_check: rng.next_u64() & 1 == 1,
            aebs,
            ml: rng.next_u64() & 1 == 1,
            mitigation,
            views: (rng.next_u64() % u64::from(adas_core::MAX_VIEWS + 1)) as u8,
        },
    }
}

fn arb_spec(rng: &mut TestRng) -> CampaignSpec {
    let cells = (0..rng.usize_in(1, 6)).map(|_| arb_cell(rng)).collect();
    CampaignSpec {
        campaign_seed: rng.next_u64(),
        repetitions: 1 + rng.next_u64() as u32 % 10,
        max_steps: [0u32, 500, 10_000][rng.usize_in(0, 3)],
        scenario_mask: 1 + (rng.next_u64() as u8 % SCENARIO_MASK_ALL),
        attack: adas_attack::AttackScheduler::Immediate,
        cells,
    }
}

fn arb_run(rng: &mut TestRng) -> RunId {
    RunId {
        scenario: ScenarioId::ALL[rng.usize_in(0, ScenarioId::ALL.len())],
        position: InitialPosition::ALL[rng.usize_in(0, InitialPosition::ALL.len())],
        repetition: rng.next_u64() as u32,
    }
}

fn opt_f64(rng: &mut TestRng) -> Option<f64> {
    (rng.next_u64() & 1 == 1).then(|| rng.unit_f64() * 100.0)
}

fn arb_record(rng: &mut TestRng) -> RunRecord {
    RunRecord {
        min_ttc: rng.unit_f64() * 10.0,
        t_fcw_at_min_ttc: rng.unit_f64() * 10.0,
        max_brake: rng.unit_f64() * 4.0,
        avg_following_distance: rng.unit_f64() * 40.0,
        min_lane_line_distance: rng.unit_f64(),
        steps: rng.next_u64() % 10_000,
        h1_time: opt_f64(rng),
        h2_time: opt_f64(rng),
        accident: match rng.usize_in(0, 3) {
            0 => None,
            1 => Some(AccidentKind::ForwardCollision),
            _ => Some(AccidentKind::LaneViolation),
        },
        accident_time: opt_f64(rng),
        fault_start: opt_f64(rng),
        aeb_trigger: opt_f64(rng),
        driver_brake_trigger: opt_f64(rng),
        driver_steer_trigger: opt_f64(rng),
        ml_activated: rng.next_u64() & 1 == 1,
    }
}

fn arb_stats(rng: &mut TestRng) -> CellStats {
    CellStats {
        runs: rng.usize_in(1, 200),
        a1_pct: rng.unit_f64() * 100.0,
        a2_pct: rng.unit_f64() * 100.0,
        prevented_pct: rng.unit_f64() * 100.0,
        hazard_pct: rng.unit_f64() * 100.0,
        aeb_mitigation_time: opt_f64(rng),
        driver_brake_mitigation_time: opt_f64(rng),
        driver_steer_mitigation_time: opt_f64(rng),
        aeb_trigger_rate: rng.unit_f64() * 100.0,
        driver_brake_trigger_rate: rng.unit_f64() * 100.0,
        driver_steer_trigger_rate: rng.unit_f64() * 100.0,
        ml_trigger_rate: rng.unit_f64() * 100.0,
    }
}

fn arb_string(rng: &mut TestRng) -> String {
    let alphabet = "abcxyz 0189/:-_ä≥✓";
    let chars: Vec<char> = alphabet.chars().collect();
    (0..rng.usize_in(0, 40))
        .map(|_| chars[rng.usize_in(0, chars.len())])
        .collect()
}

fn arb_request(rng: &mut TestRng) -> Request {
    match rng.usize_in(0, 11) {
        0 => Request::SubmitCampaign(arb_spec(rng)),
        1 => Request::SubmitCell {
            campaign_seed: rng.next_u64(),
            max_steps: rng.next_u64() as u32 % 20_000,
            run: arb_run(rng),
            cell: arb_cell(rng),
            with_trace: rng.next_u64() & 1 == 1,
        },
        2 => Request::Replay {
            trace_hex: arb_string(rng),
        },
        3 => Request::Status {
            job_id: rng.next_u64(),
        },
        4 => Request::Cancel {
            job_id: rng.next_u64(),
        },
        5 => Request::Metrics,
        6 => Request::RegisterWorker {
            fleet_epoch: rng.next_u64(),
        },
        7 => Request::Heartbeat {
            nonce: rng.next_u64(),
        },
        8 => {
            // AssignCells requires indices.len() == spec.cells.len().
            let spec = arb_spec(rng);
            let indices = (0..spec.cells.len())
                .map(|_| rng.next_u64() as u32 % 1024)
                .collect();
            Request::AssignCells {
                assignment_id: rng.next_u64(),
                indices,
                spec,
            }
        }
        9 => Request::WorkerDrain,
        _ => Request::Shutdown,
    }
}

fn arb_state(rng: &mut TestRng) -> JobState {
    [
        JobState::Queued,
        JobState::Running,
        JobState::Done,
        JobState::Cancelled,
        JobState::Failed,
    ][rng.usize_in(0, 5)]
}

fn arb_response(rng: &mut TestRng) -> Response {
    match rng.usize_in(0, 12) {
        0 => Response::Accepted {
            job_id: rng.next_u64(),
            cells: rng.next_u64() as u32 % 1024,
        },
        1 => Response::Rejected {
            retry_after_ms: rng.next_u64() as u32 % 10_000,
            reason: arb_string(rng),
        },
        2 => Response::CellResult {
            job_id: rng.next_u64(),
            cell_index: rng.next_u64() as u32 % 1024,
            stats: arb_stats(rng),
        },
        3 => Response::JobDone {
            job_id: rng.next_u64(),
            state: arb_state(rng),
        },
        4 => Response::RunResult {
            record: arb_record(rng),
            trace: (rng.next_u64() & 1 == 1)
                .then(|| (0..rng.usize_in(0, 64)).map(|_| rng.next_u64() as u8).collect()),
        },
        5 => Response::ReplayVerdict {
            outcome: [
                ReplayOutcome::Identical,
                ReplayOutcome::Diverged,
                ReplayOutcome::NotFound,
                ReplayOutcome::Error,
            ][rng.usize_in(0, 4)],
            detail: arb_string(rng),
        },
        6 => Response::StatusReport {
            state: arb_state(rng),
            cells_done: rng.next_u64() as u32,
            cells_total: rng.next_u64() as u32,
            runs_done: rng.next_u64(),
        },
        7 => Response::MetricsJson(arb_string(rng)),
        8 => Response::Error(arb_string(rng)),
        9 => Response::WorkerHello {
            queue_capacity: rng.next_u64() as u32,
            threads: rng.next_u64() as u32,
            batch_width: rng.next_u64() as u32,
            memo_cells: rng.next_u64(),
        },
        10 => Response::HeartbeatAck {
            nonce: rng.next_u64(),
            queued: rng.next_u64() as u32,
            running: rng.next_u64() as u32,
        },
        _ => Response::ShutdownAck,
    }
}

/// Frames a message and reads it back through the byte stream.
fn frame_roundtrip(kind: u8, payload: &[u8]) -> (u8, Vec<u8>) {
    let mut wire = Vec::new();
    write_frame(&mut wire, kind, payload).expect("write to vec");
    let mut cursor: &[u8] = &wire;
    let out = read_frame(&mut cursor).expect("read back");
    assert!(cursor.is_empty(), "frame left trailing bytes");
    out
}

// --- round-trip properties ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn requests_roundtrip(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("req-{seed}"));
        let request = arb_request(&mut rng);
        let (kind, payload) = frame_roundtrip(request.kind(), &request.payload());
        let back = Request::decode(kind, &payload).expect("decodes");
        prop_assert_eq!(back, request);
    }

    #[test]
    fn responses_roundtrip(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("resp-{seed}"));
        let response = arb_response(&mut rng);
        let (kind, payload) = frame_roundtrip(response.kind(), &response.payload());
        let back = Response::decode(kind, &payload).expect("decodes");
        // NaN-free generators, so PartialEq is exact here.
        prop_assert_eq!(back, response);
    }

    #[test]
    fn mutated_frames_never_panic(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("mutate-{seed}"));
        let request = arb_request(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, request.kind(), &request.payload()).expect("write");
        // Flip one byte anywhere in the frame.
        let at = rng.usize_in(0, wire.len());
        wire[at] ^= 1 << rng.usize_in(0, 8);
        let mut cursor: &[u8] = &wire;
        // Any result is fine — the property is "no panic, no hang".
        if let Ok((kind, payload)) = read_frame(&mut cursor) {
            let _ = Request::decode(kind, &payload);
            let _ = Response::decode(kind, &payload);
        }
    }

    #[test]
    fn truncations_error_cleanly(seed in 0u64..u64::MAX) {
        let mut rng = TestRng::deterministic(&format!("trunc-{seed}"));
        let response = arb_response(&mut rng);
        let mut wire = Vec::new();
        write_frame(&mut wire, response.kind(), &response.payload()).expect("write");
        let cut = rng.usize_in(0, wire.len());
        let mut cursor: &[u8] = &wire[..cut];
        match read_frame(&mut cursor) {
            Err(ProtocolError::Closed) => prop_assert_eq!(cut, 0),
            Err(_) => {}
            // A cut can still parse when it lands exactly after a frame
            // whose payload length was satisfied — only possible at the
            // full length.
            Ok(_) => prop_assert_eq!(cut, wire.len()),
        }
    }
}

// --- directed malformed-frame cases ---------------------------------------

fn header(version: u8, kind: u8, len: u32) -> Vec<u8> {
    let mut h = vec![b'A', b'S', version, kind];
    h.extend_from_slice(&len.to_le_bytes());
    h
}

#[test]
fn truncated_length_prefix_is_an_error_not_a_panic() {
    // Header cut inside the 4-byte length field.
    for cut in 1..8 {
        let full = header(VERSION, 0x06, 0);
        let mut cursor: &[u8] = &full[..cut];
        match read_frame(&mut cursor) {
            Err(ProtocolError::Io(_)) => {}
            other => panic!("cut {cut}: expected Io error, got {other:?}"),
        }
    }
}

#[test]
fn oversized_declared_length_is_rejected_before_allocation() {
    // Declares a 4 GiB-ish payload; must be rejected from the 8 header
    // bytes alone (the "payload" here is empty, so any attempt to read or
    // allocate it would fail or OOM).
    let wire = header(VERSION, 0x06, MAX_PAYLOAD + 1);
    let mut cursor: &[u8] = &wire;
    assert_eq!(
        read_frame(&mut cursor),
        Err(ProtocolError::Oversized(MAX_PAYLOAD + 1))
    );
    let wire = header(VERSION, 0x06, u32::MAX);
    let mut cursor: &[u8] = &wire;
    assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Oversized(u32::MAX)));
}

#[test]
fn bad_version_byte_is_rejected() {
    // Version 1 predates the fabric frames and is rejected too: workers
    // and coordinators negotiate nothing, the version byte must match.
    for version in [0u8, 1, 9, 0xFF] {
        let wire = header(version, 0x06, 0);
        let mut cursor: &[u8] = &wire;
        assert_eq!(read_frame(&mut cursor), Err(ProtocolError::BadVersion(version)));
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut wire = header(VERSION, 0x06, 0);
    wire[0] = b'X';
    let mut cursor: &[u8] = &wire;
    assert_eq!(read_frame(&mut cursor), Err(ProtocolError::BadMagic([b'X', b'S'])));
}

#[test]
fn unknown_kind_bytes_are_rejected_by_decode() {
    for kind in [0x00u8, 0x0E, 0x7F, 0x8E, 0xFF] {
        let wire = header(VERSION, kind, 0);
        let mut cursor: &[u8] = &wire;
        let (k, payload) = read_frame(&mut cursor).expect("framing is fine");
        assert_eq!(Request::decode(k, &payload), Err(ProtocolError::UnknownKind(kind)));
        assert_eq!(Response::decode(k, &payload), Err(ProtocolError::UnknownKind(kind)));
    }
    // The fuzz-farm kinds are one-directional: 0x0C/0x0D are requests
    // (an empty payload is malformed, not unknown), 0x8D is a response.
    assert_eq!(
        Request::decode(0x0C, &[]),
        Err(ProtocolError::Malformed("fuzz spec"))
    );
    assert_eq!(Response::decode(0x0C, &[]), Err(ProtocolError::UnknownKind(0x0C)));
    assert_eq!(Request::decode(0x8D, &[]), Err(ProtocolError::UnknownKind(0x8D)));
    assert_eq!(
        Response::decode(0x8D, &[]),
        Err(ProtocolError::Malformed("job id"))
    );
}

#[test]
fn declared_length_beyond_stream_is_an_io_error() {
    let mut wire = header(VERSION, 0x04, 8);
    wire.extend_from_slice(&[1, 2, 3]); // 3 of the declared 8 bytes
    let mut cursor: &[u8] = &wire;
    assert!(matches!(read_frame(&mut cursor), Err(ProtocolError::Io(_))));
}

#[test]
fn trailing_bytes_in_fixed_payloads_are_malformed() {
    let mut payload = Request::Status { job_id: 1 }.payload();
    payload.push(0);
    assert_eq!(
        Request::decode(0x04, &payload),
        Err(ProtocolError::Malformed("trailing bytes"))
    );
}

#[test]
fn empty_connection_close_is_clean() {
    let mut cursor: &[u8] = &[];
    assert_eq!(read_frame(&mut cursor), Err(ProtocolError::Closed));
}

#[test]
fn assign_cells_count_mismatch_is_malformed() {
    // A valid AssignCells frame whose index count disagrees with the
    // embedded spec's cell count must be rejected, not trusted.
    let spec = CampaignSpec {
        campaign_seed: 7,
        repetitions: 1,
        max_steps: 50,
        scenario_mask: 1,
        attack: adas_attack::AttackScheduler::Immediate,
        cells: vec![
            CellSpec {
                fault: None,
                interventions: InterventionConfig::none(),
            },
            CellSpec {
                fault: Some(FaultType::Mixed),
                interventions: InterventionConfig::driver_and_check(),
            },
        ],
    };
    let good = Request::AssignCells {
        assignment_id: 9,
        indices: vec![4, 11],
        spec: spec.clone(),
    };
    let (kind, payload) = frame_roundtrip(good.kind(), &good.payload());
    assert_eq!(Request::decode(kind, &payload).expect("valid"), good);

    let bad = Request::AssignCells {
        assignment_id: 9,
        indices: vec![4],
        spec,
    };
    let result = Request::decode(bad.kind(), &bad.payload());
    assert!(
        matches!(result, Err(ProtocolError::Malformed(_))),
        "count mismatch must be malformed, got {result:?}"
    );
}

#[test]
fn assign_cells_zero_or_huge_count_is_rejected() {
    use adas_core::job::MAX_CELLS;
    // Hand-build payloads with hostile counts: 0 cells and
    // MAX_CELLS + 1 cells (the latter would otherwise pre-allocate).
    for count in [0u32, (MAX_CELLS + 1) as u32] {
        let mut payload = Vec::new();
        payload.extend_from_slice(&9u64.to_le_bytes()); // assignment_id
        payload.extend_from_slice(&count.to_le_bytes());
        for i in 0..count.min(2048) {
            payload.extend_from_slice(&i.to_le_bytes());
        }
        let result = Request::decode(0x0A, &payload);
        assert!(
            matches!(result, Err(ProtocolError::Malformed(_))),
            "count {count}: expected malformed, got {result:?}"
        );
    }
}

#[test]
fn nan_and_infinity_survive_run_records() {
    let record = RunRecord {
        min_ttc: f64::INFINITY,
        avg_following_distance: f64::NAN,
        ..RunRecord::default()
    };
    let response = Response::RunResult {
        record,
        trace: None,
    };
    let (kind, payload) = frame_roundtrip(response.kind(), &response.payload());
    let back = Response::decode(kind, &payload).expect("decodes");
    // Bit-pattern comparison via Debug (NaN != NaN under PartialEq).
    assert_eq!(format!("{back:?}"), format!("{response:?}"));
}
