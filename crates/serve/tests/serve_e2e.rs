//! End-to-end tests against an in-process `adas-serve` daemon on an
//! ephemeral port: bit-identical streamed results vs the direct
//! `run_single` path at multiple `ADAS_THREADS` settings, concurrent
//! clients, backpressure at queue capacity 1, graceful shutdown with a job
//! in flight, warm resubmission, wire replay, and daemon survival of
//! malformed byte streams.

use adas_attack::FaultType;
use adas_core::job::CellSpec;
use adas_core::{
    run_single, ArtifactCache, CampaignSpec, CellStats, InterventionConfig, RunId,
};
use adas_recorder::Trace;
use adas_scenarios::{InitialPosition, RunRecord, ScenarioId};
use adas_serve::{
    Client, JobState, ReplayOutcome, Response, Server, ServerConfig, Submission,
};
use std::path::PathBuf;
use std::sync::Mutex;
use std::thread;
use std::time::Duration;

/// Serialises tests that mutate `ADAS_THREADS` (process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("adas-serve-e2e-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Binds a server on an ephemeral port and runs it on its own thread.
fn start_server(
    queue_capacity: usize,
    cache: ArtifactCache,
    trace_dir: PathBuf,
) -> (String, thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind(ServerConfig {
        addr: "127.0.0.1:0".into(),
        queue_capacity,
        cache,
        trace_dir,
        model_spec: adas_ml::ModelSpec::default(),
    })
    .expect("bind ephemeral port");
    let addr = server.local_addr().expect("local addr").to_string();
    let handle = thread::spawn(move || server.run());
    (addr, handle)
}

/// S1 + S4 only (mask bits 0 and 3), short runs — small but non-trivial.
fn quick_spec(cells: Vec<CellSpec>) -> CampaignSpec {
    CampaignSpec {
        campaign_seed: 7_082_025,
        repetitions: 2,
        max_steps: 1500,
        scenario_mask: 0b00_1001,
        attack: adas_attack::AttackScheduler::Immediate,
        cells,
    }
}

/// Full-mask, many-repetition spec that keeps the executor busy for a
/// while (hundreds of full-length runs).
fn slow_spec(cells: usize) -> CampaignSpec {
    let all = [
        CellSpec {
            fault: Some(FaultType::RelativeDistance),
            interventions: InterventionConfig::none(),
        },
        CellSpec {
            fault: Some(FaultType::RelativeDistance),
            interventions: InterventionConfig::driver_and_check(),
        },
        CellSpec {
            fault: Some(FaultType::DesiredCurvature),
            interventions: InterventionConfig::none(),
        },
        CellSpec {
            fault: Some(FaultType::Mixed),
            interventions: InterventionConfig::driver_only(),
        },
    ];
    CampaignSpec::new(0xBEEF, 20, all[..cells].to_vec())
}

/// The reference result: the same grid evaluated in-process through
/// `run_single`, serially, exactly as the CLI harnesses do.
fn direct_cell_bytes(spec: &CampaignSpec) -> Vec<Vec<u8>> {
    let ids = spec.run_ids();
    spec.cells
        .iter()
        .map(|cell| {
            let config = spec.config_for(cell);
            let records: Vec<RunRecord> = ids
                .iter()
                .map(|id| run_single(*id, cell.fault, &config, None, spec.campaign_seed))
                .collect();
            CellStats::from_records(&records).to_bytes()
        })
        .collect()
}

fn streamed_cell_bytes(addr: &str, spec: &CampaignSpec) -> Vec<Vec<u8>> {
    let mut client = Client::connect(addr).expect("connect");
    let result = client
        .run_campaign(spec, |_, _| {})
        .expect("protocol ok")
        .expect("accepted");
    assert_eq!(result.state, JobState::Done);
    assert_eq!(result.cells.len(), spec.cells.len());
    // Cells stream in submission order.
    for (i, (index, _)) in result.cells.iter().enumerate() {
        assert_eq!(*index as usize, i);
    }
    result.cells.into_iter().map(|(_, s)| s.to_bytes()).collect()
}

fn json_u64(json: &str, key: &str) -> u64 {
    let pat = format!("\"{key}\": ");
    let at = json
        .find(&pat)
        .unwrap_or_else(|| panic!("missing {key} in {json}"))
        + pat.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("numeric metric")
}

#[test]
fn wire_results_bit_identical_to_direct_run_at_any_thread_count() {
    let _guard = ENV_LOCK.lock().unwrap();
    let spec_a = quick_spec(vec![
        CellSpec {
            fault: Some(FaultType::RelativeDistance),
            interventions: InterventionConfig::none(),
        },
        CellSpec {
            fault: Some(FaultType::RelativeDistance),
            interventions: InterventionConfig::driver_and_check(),
        },
    ]);
    let spec_b = quick_spec(vec![
        CellSpec {
            fault: Some(FaultType::DesiredCurvature),
            interventions: InterventionConfig::driver_only(),
        },
        CellSpec {
            fault: None,
            interventions: InterventionConfig::none(),
        },
    ]);
    let reference_a = direct_cell_bytes(&spec_a);
    let reference_b = direct_cell_bytes(&spec_b);

    for threads in ["1", "4"] {
        std::env::set_var("ADAS_THREADS", threads);
        let (addr, server) = start_server(8, ArtifactCache::disabled(), tmp_dir("threads"));

        // Two concurrent clients with different campaigns.
        let (wire_a, wire_b) = thread::scope(|scope| {
            let a = scope.spawn(|| streamed_cell_bytes(&addr, &spec_a));
            let b = scope.spawn(|| streamed_cell_bytes(&addr, &spec_b));
            (a.join().expect("client a"), b.join().expect("client b"))
        });
        assert_eq!(
            wire_a, reference_a,
            "threads={threads}: wire cells must be bit-identical to direct run"
        );
        assert_eq!(
            wire_b, reference_b,
            "threads={threads}: wire cells must be bit-identical to direct run"
        );

        Client::connect(&addr)
            .expect("connect")
            .shutdown()
            .expect("shutdown ack");
        server.join().expect("join").expect("clean exit");
        std::env::remove_var("ADAS_THREADS");
    }
}

#[test]
fn warm_resubmission_is_served_from_memory_with_identical_bytes() {
    let cache_dir = tmp_dir("warm-cache");
    let (addr, server) = start_server(8, ArtifactCache::at(&cache_dir), tmp_dir("warm-traces"));
    let spec = quick_spec(vec![
        CellSpec {
            fault: Some(FaultType::RelativeDistance),
            interventions: InterventionConfig::none(),
        },
        CellSpec {
            fault: Some(FaultType::Mixed),
            interventions: InterventionConfig::driver_and_check(),
        },
    ]);

    let cold = streamed_cell_bytes(&addr, &spec);
    let warm = streamed_cell_bytes(&addr, &spec);
    assert_eq!(cold, warm, "warm resubmission must return identical bytes");

    let mut client = Client::connect(&addr).expect("connect");
    let metrics = client.metrics().expect("metrics");
    assert_eq!(json_u64(&metrics, "memo_hits"), 2, "{metrics}");
    assert_eq!(json_u64(&metrics, "computed"), 2, "{metrics}");
    client.shutdown().expect("shutdown ack");
    server.join().expect("join").expect("clean exit");
}

#[test]
fn full_queue_rejects_with_explicit_backpressure() {
    let (addr, server) = start_server(1, ArtifactCache::disabled(), tmp_dir("backpressure"));

    // A: accepted and picked up by the executor.
    let mut client_a = Client::connect(&addr).expect("connect a");
    let spec = slow_spec(2);
    assert!(matches!(
        client_a.submit(&spec).expect("submit a"),
        Submission::Accepted { .. }
    ));
    thread::sleep(Duration::from_millis(400)); // executor pops A

    // B: fills the single queue slot while A runs.
    let mut client_b = Client::connect(&addr).expect("connect b");
    assert!(matches!(
        client_b.submit(&spec).expect("submit b"),
        Submission::Accepted { .. }
    ));

    // C: bounced with explicit backpressure, not an error or a hang.
    let mut client_c = Client::connect(&addr).expect("connect c");
    match client_c.submit(&spec).expect("submit c") {
        Submission::Rejected {
            retry_after_ms,
            reason,
        } => {
            assert!(retry_after_ms > 0, "retry hint must be positive");
            assert!(reason.contains("full"), "reason: {reason}");
        }
        Submission::Accepted { .. } => panic!("third job must be rejected"),
    }

    // Both accepted jobs still stream to completion.
    let (cells_a, state_a) = client_a.stream_results(|_, _| {}).expect("stream a");
    let (cells_b, state_b) = client_b.stream_results(|_, _| {}).expect("stream b");
    assert_eq!((state_a, cells_a.len()), (JobState::Done, 2));
    assert_eq!((state_b, cells_b.len()), (JobState::Done, 2));

    let metrics = client_c.metrics().expect("metrics");
    assert_eq!(json_u64(&metrics, "rejected"), 1, "{metrics}");
    client_c.shutdown().expect("shutdown ack");
    server.join().expect("join").expect("clean exit");
}

#[test]
fn graceful_shutdown_drains_the_in_flight_job() {
    let (addr, server) = start_server(4, ArtifactCache::disabled(), tmp_dir("drain"));

    let mut client_a = Client::connect(&addr).expect("connect a");
    let spec = slow_spec(2);
    assert!(matches!(
        client_a.submit(&spec).expect("submit"),
        Submission::Accepted { .. }
    ));
    thread::sleep(Duration::from_millis(300)); // let the job start

    // Shutdown arrives while the job is mid-flight…
    Client::connect(&addr)
        .expect("connect b")
        .shutdown()
        .expect("shutdown ack");

    // …yet the accepted job drains to completion before the server exits.
    let (cells, state) = client_a.stream_results(|_, _| {}).expect("stream");
    assert_eq!(state, JobState::Done, "in-flight job must drain, not drop");
    assert_eq!(cells.len(), 2);
    server.join().expect("join").expect("clean exit");

    // New submissions are refused once the listener is gone.
    assert!(Client::connect(&addr).is_err(), "listener must be closed");
}

#[test]
fn cancel_stops_a_running_job_and_status_tracks_it() {
    let (addr, server) = start_server(4, ArtifactCache::disabled(), tmp_dir("cancel"));

    let mut client_a = Client::connect(&addr).expect("connect a");
    let spec = slow_spec(4);
    let Submission::Accepted { job_id, cells } = client_a.submit(&spec).expect("submit") else {
        panic!("submission must be accepted");
    };
    assert_eq!(cells, 4);
    thread::sleep(Duration::from_millis(300));

    let mut client_b = Client::connect(&addr).expect("connect b");
    let status = client_b.status(job_id).expect("status");
    assert!(
        !status.state.is_terminal(),
        "job should still be live, got {:?}",
        status.state
    );
    assert_eq!(status.cells_total, 4);
    client_b.cancel(job_id).expect("cancel");

    let (cells, state) = client_a.stream_results(|_, _| {}).expect("stream");
    assert_eq!(state, JobState::Cancelled);
    assert!(cells.len() < 4, "cancelled job must not stream all cells");
    let status = client_b.status(job_id).expect("status after cancel");
    assert_eq!(status.state, JobState::Cancelled);

    client_b.shutdown().expect("shutdown ack");
    server.join().expect("join").expect("clean exit");
}

#[test]
fn malformed_and_truncated_streams_never_wedge_the_daemon() {
    use adas_serve::protocol::recv_response;
    use std::io::Write;

    let (addr, server) = start_server(4, ArtifactCache::disabled(), tmp_dir("garbage"));

    // Garbage magic: the server answers with a protocol error and drops
    // the connection.
    let mut garbage = std::net::TcpStream::connect(&addr).expect("connect raw");
    garbage.write_all(b"XXXXGARBAGE-GARBAGE").expect("write");
    match recv_response(&mut garbage) {
        Ok(Response::Error(e)) => assert!(e.contains("magic"), "{e}"),
        Ok(other) => panic!("unexpected response {other:?}"),
        Err(_) => {} // already dropped — equally acceptable
    }
    drop(garbage);

    // Truncated frame: declared 100-byte payload, 10 bytes sent, then EOF.
    let mut truncated = std::net::TcpStream::connect(&addr).expect("connect raw");
    let mut frame = vec![b'A', b'S', adas_serve::protocol::VERSION, 0x04];
    frame.extend_from_slice(&100u32.to_le_bytes());
    frame.extend_from_slice(&[0u8; 10]);
    truncated.write_all(&frame).expect("write");
    drop(truncated);

    // Invalid campaign spec (zero cells): refused by the payload codec
    // before it can reach the queue.
    let mut client = Client::connect(&addr).expect("connect");
    let empty = CampaignSpec::new(1, 1, Vec::new());
    let err = client.submit(&empty).expect_err("must be refused");
    assert!(format!("{err}").contains("campaign spec"), "{err}");

    // The daemon is alive and still counts protocol errors (the refusal
    // above dropped that connection, as framing errors must).
    let mut client = Client::connect(&addr).expect("reconnect");
    let metrics = client.metrics().expect("metrics after garbage");
    assert!(json_u64(&metrics, "protocol_errors") >= 1, "{metrics}");
    client.shutdown().expect("shutdown ack");
    server.join().expect("join").expect("clean exit");
}

#[test]
fn single_runs_and_replay_verify_over_the_wire() {
    let trace_dir = tmp_dir("replay-traces");
    let (addr, server) = start_server(4, ArtifactCache::disabled(), trace_dir.clone());
    let mut client = Client::connect(&addr).expect("connect");

    let run = RunId {
        scenario: ScenarioId::ALL[0],
        position: InitialPosition::ALL[0],
        repetition: 0,
    };
    let cell = CellSpec {
        fault: Some(FaultType::RelativeDistance),
        interventions: InterventionConfig::driver_and_check(),
    };

    // Traced and untraced executions of the same run agree exactly.
    let (plain, none) = client
        .submit_cell(2025, 2000, run, cell, false)
        .expect("plain run");
    assert!(none.is_none());
    let (traced, bytes) = client
        .submit_cell(2025, 2000, run, cell, true)
        .expect("traced run");
    assert_eq!(format!("{plain:?}"), format!("{traced:?}"));

    // Store the returned trace where the server resolves hashes, then ask
    // the server to verify it: bit-exact re-execution.
    let trace = Trace::from_bytes(&bytes.expect("trace bytes")).expect("parse trace");
    trace.save_in(&trace_dir).expect("persist trace");
    let hex = trace.content_hex();
    let (outcome, detail) = client.replay(&hex).expect("replay");
    assert_eq!(outcome, ReplayOutcome::Identical, "{detail}");

    // Unknown and malformed hashes answer NotFound — no panic, no hang.
    let (outcome, _) = client.replay("0000000000000000").expect("replay missing");
    assert_eq!(outcome, ReplayOutcome::NotFound);
    let (outcome, _) = client.replay("../../etc/passwd").expect("replay hostile");
    assert_eq!(outcome, ReplayOutcome::NotFound);

    client.shutdown().expect("shutdown ack");
    server.join().expect("join").expect("clean exit");
}
