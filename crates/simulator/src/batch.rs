//! Structure-of-arrays world state for lockstep batch execution.
//!
//! A batch of campaign runs advances in lockstep: every active lane
//! executes the same pipeline stage of the same 10 ms cycle before any
//! lane moves on. [`BatchWorld`] is the batch-level view of that state —
//! ego position, lateral offset, speed, acceleration, simulation clock,
//! surface friction, and patch/fault activity held as contiguous
//! per-lane arrays, plus the active-lane mask that handles per-run
//! divergence (accident / time limit / quiescence) without branching the
//! lockstep loop per run.
//!
//! Per-lane `World`s remain authoritative for the physics itself: bit
//! identity with the scalar path requires each run's f64 operation
//! sequence to be exactly the scalar one, so lane state is *captured*
//! into the panels after each lockstep tick rather than integrated in
//! transposed form. The panels give batch drivers (and diagnostics) a
//! cache-friendly columnar view and carry the occupancy accounting that
//! `results/BENCH_campaign.json` reports.

use crate::friction::SurfaceFriction;
use crate::world::World;

/// Snapshot of one lane, read back from the panels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaneState {
    /// Ego longitudinal position, metres.
    pub s: f64,
    /// Ego lateral offset from lane centre, metres.
    pub d: f64,
    /// Ego speed, m/s.
    pub v: f64,
    /// Ego realised acceleration, m/s².
    pub accel: f64,
    /// Simulation clock, seconds.
    pub time: f64,
    /// Road-surface friction coefficient μ.
    pub friction: f64,
    /// Whether the adversarial patch / fault was active this cycle.
    pub fault_active: bool,
}

/// Contiguous per-lane world state for one lockstep batch.
#[derive(Debug, Clone)]
pub struct BatchWorld {
    width: usize,
    active: Vec<bool>,
    s: Vec<f64>,
    d: Vec<f64>,
    v: Vec<f64>,
    accel: Vec<f64>,
    time: Vec<f64>,
    friction: Vec<f64>,
    fault: Vec<bool>,
    ticks: u64,
    lane_steps: u64,
}

impl BatchWorld {
    /// An empty batch with `width` lanes, all inactive.
    ///
    /// # Panics
    ///
    /// Panics if `width == 0`.
    #[must_use]
    pub fn new(width: usize) -> Self {
        assert!(width > 0, "batch width must be ≥ 1");
        Self {
            width,
            active: vec![false; width],
            s: vec![0.0; width],
            d: vec![0.0; width],
            v: vec![0.0; width],
            accel: vec![0.0; width],
            time: vec![0.0; width],
            friction: vec![0.0; width],
            fault: vec![false; width],
            ticks: 0,
            lane_steps: 0,
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Marks `lane` active and captures the run's initial state.
    ///
    /// # Panics
    ///
    /// Panics if the lane is already active or out of range.
    pub fn activate(&mut self, lane: usize, world: &World) {
        assert!(lane < self.width, "lane out of range");
        assert!(!self.active[lane], "lane {lane} already active");
        self.active[lane] = true;
        self.capture(lane, world, false);
    }

    /// Captures one lane's post-step state into the panels.
    ///
    /// # Panics
    ///
    /// Panics if the lane is inactive or out of range.
    pub fn capture(&mut self, lane: usize, world: &World, fault_active: bool) {
        assert!(lane < self.width, "lane out of range");
        assert!(self.active[lane], "capture on inactive lane {lane}");
        let st = world.ego().state();
        let SurfaceFriction { mu, .. } = world.surface();
        self.s[lane] = st.s;
        self.d[lane] = st.d;
        self.v[lane] = st.v;
        self.accel[lane] = st.accel;
        self.time[lane] = world.time();
        self.friction[lane] = mu;
        self.fault[lane] = fault_active;
    }

    /// Retires a finished lane: it drops out of the active mask (its last
    /// captured state stays readable) and the slot becomes refillable.
    ///
    /// # Panics
    ///
    /// Panics if the lane is inactive or out of range.
    pub fn retire(&mut self, lane: usize) {
        assert!(lane < self.width, "lane out of range");
        assert!(self.active[lane], "retire on inactive lane {lane}");
        self.active[lane] = false;
    }

    /// Whether `lane` is currently active.
    #[must_use]
    pub fn is_active(&self, lane: usize) -> bool {
        self.active[lane]
    }

    /// Number of currently active lanes.
    #[must_use]
    pub fn active_lanes(&self) -> usize {
        self.active.iter().filter(|a| **a).count()
    }

    /// The active-lane mask.
    #[must_use]
    pub fn active_mask(&self) -> &[bool] {
        &self.active
    }

    /// Accounts one completed lockstep tick (all active lanes advanced one
    /// cycle) for the occupancy statistics.
    pub fn advance(&mut self) {
        self.ticks += 1;
        self.lane_steps += self.active_lanes() as u64;
    }

    /// Lockstep ticks executed so far.
    #[must_use]
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Total per-lane steps executed (Σ active lanes over ticks).
    #[must_use]
    pub fn lane_steps(&self) -> u64 {
        self.lane_steps
    }

    /// Mean fraction of batch slots doing useful work per tick, in
    /// `[0, 1]`. `None` before the first tick.
    #[must_use]
    pub fn occupancy(&self) -> Option<f64> {
        (self.ticks > 0)
            .then(|| self.lane_steps as f64 / (self.ticks * self.width as u64) as f64)
    }

    /// Reads one lane's last captured state. `None` for a lane that was
    /// never activated.
    #[must_use]
    pub fn lane(&self, lane: usize) -> Option<LaneState> {
        assert!(lane < self.width, "lane out of range");
        (self.time[lane] > 0.0 || self.active[lane]).then(|| LaneState {
            s: self.s[lane],
            d: self.d[lane],
            v: self.v[lane],
            accel: self.accel[lane],
            time: self.time[lane],
            friction: self.friction[lane],
            fault_active: self.fault[lane],
        })
    }

    /// Ego longitudinal positions panel (one slot per lane).
    #[must_use]
    pub fn positions(&self) -> &[f64] {
        &self.s
    }

    /// Ego speeds panel.
    #[must_use]
    pub fn speeds(&self) -> &[f64] {
        &self.v
    }

    /// Ego lateral offsets panel.
    #[must_use]
    pub fn lane_offsets(&self) -> &[f64] {
        &self.d
    }

    /// Surface friction coefficients panel.
    #[must_use]
    pub fn frictions(&self) -> &[f64] {
        &self.friction
    }

    /// Patch/fault-activity panel.
    #[must_use]
    pub fn fault_mask(&self) -> &[bool] {
        &self.fault
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadBuilder;
    use crate::vehicle::VehicleCommand;
    use crate::world::WorldConfig;

    fn world() -> World {
        let road = RoadBuilder::new().straight(2000.0).build();
        let mut w = World::new(WorldConfig::default(), road);
        w.spawn_ego(50.0, 20.0);
        w
    }

    #[test]
    fn activate_capture_retire_lifecycle() {
        let mut b = BatchWorld::new(4);
        assert_eq!(b.active_lanes(), 0);
        let mut w = world();
        b.activate(1, &w);
        assert!(b.is_active(1));
        assert_eq!(b.active_lanes(), 1);
        let lane = b.lane(1).expect("captured");
        assert_eq!(lane.s, 50.0);
        assert_eq!(lane.v, 20.0);
        assert!(!lane.fault_active);

        w.step(VehicleCommand {
            gas: 0.5,
            brake: 0.0,
            steer: 0.0,
        });
        b.capture(1, &w, true);
        let lane = b.lane(1).expect("captured");
        assert!(lane.time > 0.0);
        assert!(lane.s > 50.0);
        assert!(lane.fault_active);

        b.retire(1);
        assert!(!b.is_active(1));
        // Last captured state stays readable after retirement.
        assert!(b.lane(1).is_some());
        assert_eq!(b.lane(0), None, "never-activated lane has no state");
    }

    #[test]
    fn occupancy_accounts_active_fraction() {
        let mut b = BatchWorld::new(4);
        let w = world();
        assert_eq!(b.occupancy(), None);
        b.activate(0, &w);
        b.activate(1, &w);
        b.advance(); // 2 of 4 active
        b.retire(1);
        b.advance(); // 1 of 4 active
        assert_eq!(b.ticks(), 2);
        assert_eq!(b.lane_steps(), 3);
        assert_eq!(b.occupancy(), Some(3.0 / 8.0));
    }

    #[test]
    #[should_panic(expected = "already active")]
    fn double_activation_panics() {
        let mut b = BatchWorld::new(2);
        let w = world();
        b.activate(0, &w);
        b.activate(0, &w);
    }

    #[test]
    fn panels_are_lane_indexed() {
        let mut b = BatchWorld::new(3);
        let w = world();
        b.activate(2, &w);
        assert_eq!(b.positions()[2], 50.0);
        assert_eq!(b.speeds()[2], 20.0);
        assert_eq!(b.positions()[0], 0.0);
        assert_eq!(b.active_mask(), &[false, false, true]);
        assert!(b.frictions()[2] > 0.0);
    }
}
