//! Collision and lane-departure detection in the frenet frame.

use crate::road::{LaneId, Road};
use crate::vehicle::Vehicle;
use serde::{Deserialize, Serialize};

/// A contact between the ego vehicle and another vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CollisionEvent {
    /// Simulation time of first contact, seconds.
    pub time: f64,
    /// Index of the NPC involved.
    pub npc_index: usize,
    /// Ego speed minus other vehicle speed at contact, m/s.
    pub closing_speed: f64,
    /// True when contact is predominantly longitudinal (rear-end with the
    /// vehicle ahead) rather than a side swipe.
    pub longitudinal: bool,
}

/// A lane-departure event: the ego's center crossed its lane boundary.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LaneDeparture {
    /// Simulation time at which the center crossed the boundary, seconds.
    pub time: f64,
    /// Lateral offset when it happened, metres.
    pub offset: f64,
}

/// Returns `true` when the two vehicles' bounding boxes overlap.
///
/// The check treats both bodies as axis-aligned rectangles in the frenet
/// frame — accurate for the small heading errors of highway driving that the
/// paper's scenarios produce.
#[must_use]
pub fn vehicles_overlap(a: &Vehicle, b: &Vehicle) -> bool {
    let ds = (a.state().s - b.state().s).abs();
    let dd = (a.state().d - b.state().d).abs();
    ds < (a.params().length + b.params().length) / 2.0
        && dd < (a.params().width + b.params().width) / 2.0
}

/// Classifies whether a contact between `ego` and `other` is longitudinal
/// (rear-end style) or lateral (side swipe).
#[must_use]
pub fn contact_is_longitudinal(ego: &Vehicle, other: &Vehicle) -> bool {
    let dd = (ego.state().d - other.state().d).abs();
    dd < (ego.params().width + other.params().width) / 4.0
}

/// Distance from the ego's nearer body edge to the nearer boundary line of
/// the lane band centred at `lane`, metres. Negative once the edge pokes
/// over the line.
///
/// This is the "distance to lane lines" metric of the paper's Table V and
/// the trigger quantity for its H2 hazard (< 0.1 m).
#[must_use]
pub fn distance_to_lane_line(road: &Road, lane: LaneId, ego: &Vehicle) -> f64 {
    let c = road.lane_center_offset(lane);
    road.lane_width() / 2.0 - (ego.state().d - c).abs() - ego.params().width / 2.0
}

/// Returns `true` when the ego's *center* has crossed a boundary of `lane` —
/// the paper's A2 "driving out of the lane" accident condition.
#[must_use]
pub fn center_departed_lane(road: &Road, lane: LaneId, ego: &Vehicle) -> bool {
    let c = road.lane_center_offset(lane);
    (ego.state().d - c).abs() > road.lane_width() / 2.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadBuilder;
    use crate::vehicle::VehicleParams;
    use proptest::prelude::*;

    fn car_at(s: f64, d: f64) -> Vehicle {
        Vehicle::new(VehicleParams::sedan(), s, d, 10.0)
    }

    #[test]
    fn overlapping_same_lane() {
        assert!(vehicles_overlap(&car_at(0.0, 0.0), &car_at(4.0, 0.0)));
        assert!(!vehicles_overlap(&car_at(0.0, 0.0), &car_at(5.0, 0.0)));
    }

    #[test]
    fn adjacent_lane_no_overlap() {
        assert!(!vehicles_overlap(&car_at(0.0, 0.0), &car_at(0.0, 3.5)));
        // Mid-cut-in: lateral gap closed.
        assert!(vehicles_overlap(&car_at(0.0, 0.0), &car_at(0.0, 1.5)));
    }

    #[test]
    fn longitudinal_classification() {
        assert!(contact_is_longitudinal(&car_at(0.0, 0.0), &car_at(4.0, 0.2)));
        assert!(!contact_is_longitudinal(&car_at(0.0, 0.0), &car_at(1.0, 1.7)));
    }

    #[test]
    fn lane_line_distance_centered() {
        let road = RoadBuilder::straight_highway(100.0).build();
        let ego = car_at(10.0, 0.0);
        let d = distance_to_lane_line(&road, road.ego_lane(), &ego);
        // (3.5 - 1.85) / 2 = 0.825
        assert!((d - 0.825).abs() < 1e-9);
    }

    #[test]
    fn lane_line_distance_negative_when_edge_over() {
        let road = RoadBuilder::straight_highway(100.0).build();
        let ego = car_at(10.0, 1.2);
        assert!(distance_to_lane_line(&road, road.ego_lane(), &ego) < 0.0);
        // Center still inside, so not yet departed.
        assert!(!center_departed_lane(&road, road.ego_lane(), &ego));
    }

    #[test]
    fn center_departure_threshold() {
        let road = RoadBuilder::straight_highway(100.0).build();
        assert!(!center_departed_lane(&road, road.ego_lane(), &car_at(0.0, 1.74)));
        assert!(center_departed_lane(&road, road.ego_lane(), &car_at(0.0, 1.76)));
        assert!(center_departed_lane(&road, road.ego_lane(), &car_at(0.0, -1.76)));
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(s1 in -10.0f64..10.0, d1 in -4.0f64..4.0, s2 in -10.0f64..10.0, d2 in -4.0f64..4.0) {
            let a = car_at(s1, d1);
            let b = car_at(s2, d2);
            prop_assert_eq!(vehicles_overlap(&a, &b), vehicles_overlap(&b, &a));
        }

        #[test]
        fn touching_vehicle_always_overlaps_itself_shifted_slightly(s in -5.0f64..5.0, d in -1.0f64..1.0) {
            let a = car_at(0.0, 0.0);
            let b = car_at(s, d);
            // Any displacement smaller than half the footprint overlaps.
            if s.abs() < 2.0 && d.abs() < 0.9 {
                prop_assert!(vehicles_overlap(&a, &b));
            }
        }

        #[test]
        fn lane_distance_decreases_with_offset(d in 0.0f64..1.5) {
            let road = RoadBuilder::straight_highway(100.0).build();
            let near = distance_to_lane_line(&road, road.ego_lane(), &car_at(0.0, d));
            let far = distance_to_lane_line(&road, road.ego_lane(), &car_at(0.0, d + 0.1));
            prop_assert!(far < near);
        }
    }
}
