//! Road-surface friction model.
//!
//! The paper's weather experiment (Table VIII) varies MetaDrive's friction
//! parameter to emulate rain and ice: "default", and 25 %, 50 % and 75 %
//! reductions. Friction caps both longitudinal (accelerating/braking) and
//! lateral (cornering) tyre force in the vehicle model.

use serde::{Deserialize, Serialize};

/// Friction conditions used in the evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum FrictionCondition {
    /// Dry highway (the default environment: bright dry morning).
    #[default]
    Default,
    /// 25 % reduction — light rain.
    Off25,
    /// 50 % reduction — heavy rain.
    Off50,
    /// 75 % reduction — icy road.
    Off75,
    /// Arbitrary friction scale in `(0, 1]` of the dry coefficient.
    Custom(f64),
}

impl FrictionCondition {
    /// All the named conditions swept by Table VIII, in paper order.
    pub const TABLE_VIII: [FrictionCondition; 4] = [
        FrictionCondition::Default,
        FrictionCondition::Off25,
        FrictionCondition::Off50,
        FrictionCondition::Off75,
    ];

    /// Fraction of the dry friction coefficient that remains.
    #[must_use]
    pub fn scale(self) -> f64 {
        match self {
            FrictionCondition::Default => 1.0,
            FrictionCondition::Off25 => 0.75,
            FrictionCondition::Off50 => 0.50,
            FrictionCondition::Off75 => 0.25,
            FrictionCondition::Custom(s) => s.clamp(0.01, 1.0),
        }
    }

    /// Human-readable label matching the paper's table header.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FrictionCondition::Default => "Default",
            FrictionCondition::Off25 => "25% off",
            FrictionCondition::Off50 => "50% off",
            FrictionCondition::Off75 => "75% off",
            FrictionCondition::Custom(_) => "custom",
        }
    }
}

impl std::fmt::Display for FrictionCondition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrictionCondition::Custom(s) => write!(f, "custom({s:.2})"),
            other => f.write_str(other.label()),
        }
    }
}

/// A localised friction band along the road — a wet patch, an icy bridge
/// deck, a gravel stretch. Scenario files attach zones to road segments or
/// declare them standalone; inside `[start_s, end_s)` the world's base
/// friction coefficient is multiplied by `scale`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FrictionZone {
    /// Arc length where the band begins, metres.
    pub start_s: f64,
    /// Arc length where the band ends (exclusive), metres.
    pub end_s: f64,
    /// Multiplier applied to the base friction coefficient inside the band.
    pub scale: f64,
}

impl FrictionZone {
    /// Whether arc length `s` falls inside the band.
    #[must_use]
    pub fn contains(&self, s: f64) -> bool {
        s >= self.start_s && s < self.end_s
    }
}

/// The effective surface at arc length `s`: the base surface scaled by the
/// first zone containing `s` (zones are checked in declaration order).
/// Returns `base` unchanged — bitwise — when no zone matches, so worlds
/// without zones behave exactly as before zones existed.
#[must_use]
pub fn surface_in_zones(base: SurfaceFriction, zones: &[FrictionZone], s: f64) -> SurfaceFriction {
    for zone in zones {
        if zone.contains(s) {
            return SurfaceFriction {
                mu: base.mu * zone.scale,
            };
        }
    }
    base
}

/// Physical friction limits derived from a [`FrictionCondition`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SurfaceFriction {
    /// Effective tyre-road friction coefficient.
    pub mu: f64,
}

impl SurfaceFriction {
    /// Dry-asphalt friction coefficient for a passenger car.
    pub const DRY_MU: f64 = 0.9;

    /// Builds the surface limits for a condition.
    #[must_use]
    pub fn new(condition: FrictionCondition) -> Self {
        Self {
            mu: Self::DRY_MU * condition.scale(),
        }
    }

    /// Maximum achievable deceleration magnitude, m/s².
    #[must_use]
    pub fn max_brake_decel(&self) -> f64 {
        self.mu * crate::units::GRAVITY
    }

    /// Maximum achievable drive acceleration, m/s² (engine-limited on dry
    /// roads, traction-limited when slippery).
    #[must_use]
    pub fn max_drive_accel(&self, engine_limit: f64) -> f64 {
        engine_limit.min(self.mu * crate::units::GRAVITY)
    }

    /// Maximum lateral acceleration available for cornering, m/s².
    ///
    /// A small utilisation margin keeps the combined-slip budget simple while
    /// still producing understeer on icy curves.
    #[must_use]
    pub fn max_lateral_accel(&self) -> f64 {
        0.95 * self.mu * crate::units::GRAVITY
    }
}

impl Default for SurfaceFriction {
    fn default() -> Self {
        Self::new(FrictionCondition::Default)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_match_paper_conditions() {
        assert_eq!(FrictionCondition::Default.scale(), 1.0);
        assert_eq!(FrictionCondition::Off25.scale(), 0.75);
        assert_eq!(FrictionCondition::Off50.scale(), 0.5);
        assert_eq!(FrictionCondition::Off75.scale(), 0.25);
    }

    #[test]
    fn custom_scale_clamped() {
        assert_eq!(FrictionCondition::Custom(2.0).scale(), 1.0);
        assert!(FrictionCondition::Custom(-1.0).scale() > 0.0);
    }

    #[test]
    fn dry_braking_close_to_reported_limits() {
        let f = SurfaceFriction::default();
        // ~0.9 g — enough for the AEBS full brake to be meaningful.
        assert!(f.max_brake_decel() > 8.0 && f.max_brake_decel() < 9.5);
    }

    #[test]
    fn ice_cuts_braking_to_a_quarter() {
        let dry = SurfaceFriction::new(FrictionCondition::Default);
        let ice = SurfaceFriction::new(FrictionCondition::Off75);
        assert!((ice.max_brake_decel() / dry.max_brake_decel() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn drive_accel_engine_limited_on_dry() {
        let dry = SurfaceFriction::default();
        assert_eq!(dry.max_drive_accel(3.0), 3.0);
        let ice = SurfaceFriction::new(FrictionCondition::Custom(0.1));
        assert!(ice.max_drive_accel(3.0) < 1.0);
    }

    #[test]
    fn lateral_budget_below_mu_g() {
        let f = SurfaceFriction::default();
        assert!(f.max_lateral_accel() < f.mu * crate::units::GRAVITY);
    }

    #[test]
    fn zones_scale_only_inside_their_band() {
        let base = SurfaceFriction::default();
        let zones = [
            FrictionZone {
                start_s: 100.0,
                end_s: 200.0,
                scale: 0.5,
            },
            FrictionZone {
                start_s: 150.0,
                end_s: 300.0,
                scale: 0.25,
            },
        ];
        assert_eq!(surface_in_zones(base, &zones, 50.0), base);
        assert!((surface_in_zones(base, &zones, 100.0).mu - base.mu * 0.5).abs() < 1e-12);
        // Overlap: first declared zone wins.
        assert!((surface_in_zones(base, &zones, 160.0).mu - base.mu * 0.5).abs() < 1e-12);
        assert!((surface_in_zones(base, &zones, 250.0).mu - base.mu * 0.25).abs() < 1e-12);
        // end_s is exclusive.
        assert_eq!(surface_in_zones(base, &zones, 300.0), base);
        // No zones: bitwise identity.
        assert_eq!(surface_in_zones(base, &[], 160.0), base);
    }

    #[test]
    fn table_viii_order() {
        let labels: Vec<_> = FrictionCondition::TABLE_VIII
            .iter()
            .map(|c| c.label())
            .collect();
        assert_eq!(labels, ["Default", "25% off", "50% off", "75% off"]);
    }
}
