//! Physical-world driving simulator substrate.
//!
//! This crate is the reproduction's stand-in for the MetaDrive simulator used
//! by the paper: it provides everything the closed-loop evaluation platform
//! needs from a "physical world" — vehicle dynamics, road geometry, surface
//! friction, scripted traffic, collision and lane-departure detection, and a
//! time-series trace recorder.
//!
//! The design goal is *behavioural* fidelity to the quantities the paper's
//! evaluation measures (relative distance, time-to-collision, lateral offset,
//! accidents), not visual or tyre-level fidelity. Vehicles follow a
//! friction-limited kinematic bicycle model integrated at 100 Hz in the
//! road's frenet frame.
//!
//! # Example
//!
//! ```
//! use adas_simulator::{RoadBuilder, World, WorldConfig, VehicleCommand, units};
//!
//! let road = RoadBuilder::straight_highway(3_000.0).build();
//! let mut world = World::new(WorldConfig::default(), road);
//! world.spawn_ego(0.0, units::mph(50.0));
//! for _ in 0..100 {
//!     world.step(VehicleCommand::coast());
//! }
//! assert!(world.ego().state().s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod collision;
pub mod friction;
pub mod math;
pub mod npc;
pub mod road;
pub mod rng;
pub mod trace;
pub mod units;
pub mod vehicle;
pub mod world;

pub use batch::{BatchWorld, LaneState};
pub use collision::{CollisionEvent, LaneDeparture};
pub use friction::{surface_in_zones, FrictionCondition, FrictionZone, SurfaceFriction};
pub use math::Vec2;
pub use npc::{Npc, NpcBehavior, NpcPhase, NpcPlan, NpcTrigger};
pub use road::{LaneId, Road, RoadBuilder, RoadSegment};
pub use rng::DeterministicRng;
pub use trace::{TraceRecorder, TraceSample};
pub use units::{GRAVITY, SIM_DT};
pub use vehicle::{Vehicle, VehicleCommand, VehicleParams, VehicleState};
pub use world::{LeadObservation, World, WorldConfig};
