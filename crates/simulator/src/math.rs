//! Small geometry helpers shared by the simulator.

use serde::{Deserialize, Serialize};

/// A 2-D vector / point in cartesian world coordinates (metres).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// East coordinate in metres.
    pub x: f64,
    /// North coordinate in metres.
    pub y: f64,
}

impl Vec2 {
    /// Creates a vector from its components.
    #[must_use]
    pub fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean norm.
    #[must_use]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(self, other: Self) -> f64 {
        (self - other).norm()
    }

    /// Dot product.
    #[must_use]
    pub fn dot(self, other: Self) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Rotates the vector by `angle` radians counter-clockwise.
    #[must_use]
    pub fn rotated(self, angle: f64) -> Self {
        let (s, c) = angle.sin_cos();
        Self::new(c * self.x - s * self.y, s * self.x + c * self.y)
    }
}

impl std::ops::Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl std::ops::Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl std::ops::Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

/// Clamps `value` into `[lo, hi]`.
///
/// # Panics
///
/// Panics (in debug builds) if `lo > hi`.
#[must_use]
pub fn clamp(value: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp bounds inverted: {lo} > {hi}");
    value.max(lo).min(hi)
}

/// Wraps an angle into `(-π, π]`.
#[must_use]
pub fn wrap_angle(angle: f64) -> f64 {
    let mut a = angle % std::f64::consts::TAU;
    if a <= -std::f64::consts::PI {
        a += std::f64::consts::TAU;
    } else if a > std::f64::consts::PI {
        a -= std::f64::consts::TAU;
    }
    a
}

/// Moves `current` towards `target` at a maximum rate of `max_delta` per call.
///
/// Used for actuator lag and bounded-rate driver inputs.
#[must_use]
pub fn approach(current: f64, target: f64, max_delta: f64) -> f64 {
    debug_assert!(max_delta >= 0.0);
    if (target - current).abs() <= max_delta {
        target
    } else {
        current + max_delta * (target - current).signum()
    }
}

/// Linear interpolation between `a` and `b` with `t` clamped into `[0, 1]`.
#[must_use]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    let t = clamp(t, 0.0, 1.0);
    a + (b - a) * t
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn vec2_arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(b - a, Vec2::new(2.0, -3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert!((a.dot(b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(3.0, 4.0);
        let r = v.rotated(1.234);
        assert!((r.norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn rotate_quarter_turn() {
        let v = Vec2::new(1.0, 0.0).rotated(std::f64::consts::FRAC_PI_2);
        assert!(v.x.abs() < 1e-12 && (v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn approach_reaches_and_saturates() {
        assert_eq!(approach(0.0, 1.0, 0.25), 0.25);
        assert_eq!(approach(0.9, 1.0, 0.25), 1.0);
        assert_eq!(approach(1.0, 0.0, 0.4), 0.6);
    }

    #[test]
    fn lerp_clamps() {
        assert_eq!(lerp(0.0, 10.0, -1.0), 0.0);
        assert_eq!(lerp(0.0, 10.0, 0.5), 5.0);
        assert_eq!(lerp(0.0, 10.0, 2.0), 10.0);
    }

    proptest! {
        #[test]
        fn wrap_angle_in_range(a in -100.0f64..100.0) {
            let w = wrap_angle(a);
            prop_assert!(w > -std::f64::consts::PI - 1e-9);
            prop_assert!(w <= std::f64::consts::PI + 1e-9);
            // Same direction modulo 2π.
            prop_assert!(((a - w) / std::f64::consts::TAU).round() * std::f64::consts::TAU - (a - w) < 1e-6);
        }

        #[test]
        fn clamp_within_bounds(v in -1e6f64..1e6, lo in -10.0f64..0.0, hi in 0.0f64..10.0) {
            let c = clamp(v, lo, hi);
            prop_assert!(c >= lo && c <= hi);
        }

        #[test]
        fn approach_never_overshoots(c in -10.0f64..10.0, t in -10.0f64..10.0, d in 0.0f64..5.0) {
            let n = approach(c, t, d);
            prop_assert!((n - c).abs() <= d + 1e-12);
            // Monotone towards the target.
            prop_assert!((t - n).abs() <= (t - c).abs() + 1e-12);
        }
    }
}
