//! Scripted traffic participants (lead vehicles, cut-in vehicles).
//!
//! NPC vehicles follow a phase plan: each phase has a trigger (time- or
//! gap-based) and an action (speed change, stop, lateral move). This is all
//! the paper's six NHTSA pre-crash scenarios need: constant cruise,
//! accelerate, decelerate, sudden stop, cut-in, and lane change.

use crate::friction::SurfaceFriction;
use crate::math::clamp;
use crate::road::Road;
use crate::vehicle::{Vehicle, VehicleCommand, VehicleParams, VehicleState};
use serde::{Deserialize, Serialize};

/// When a plan phase becomes active.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NpcTrigger {
    /// Active from the start of the run.
    Immediately,
    /// Active once simulation time reaches `t` seconds.
    AtTime(f64),
    /// Active once the bumper-to-bumper gap to the ego vehicle drops below
    /// the given distance, metres.
    GapToEgoBelow(f64),
}

/// What the NPC does once a phase activates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NpcBehavior {
    /// Track `target` m/s, approaching it at up to `rate` m/s².
    SetSpeed {
        /// Target speed, m/s.
        target: f64,
        /// Magnitude of accel/decel used to reach it, m/s².
        rate: f64,
    },
    /// Brake to a standstill at `decel` m/s² and hold.
    Stop {
        /// Braking deceleration magnitude, m/s².
        decel: f64,
    },
    /// Move laterally to offset `target_d` over roughly `duration` seconds
    /// while keeping the current speed policy.
    MoveLateral {
        /// Target lateral offset from the road reference line, metres.
        target_d: f64,
        /// Nominal manoeuvre duration, seconds.
        duration: f64,
    },
}

/// One phase of an NPC plan.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NpcPhase {
    /// Activation condition. Phases activate in order; a later phase cannot
    /// fire before all earlier ones have.
    pub trigger: NpcTrigger,
    /// Behaviour applied from activation onwards.
    pub behavior: NpcBehavior,
}

/// A full NPC script: initial speed plus ordered phases.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct NpcPlan {
    /// Phases applied in order as their triggers fire.
    pub phases: Vec<NpcPhase>,
}

impl NpcPlan {
    /// A plan with no phases: cruise forever at the spawn speed.
    #[must_use]
    pub fn cruise() -> Self {
        Self::default()
    }

    /// Adds a phase.
    #[must_use]
    pub fn then(mut self, trigger: NpcTrigger, behavior: NpcBehavior) -> Self {
        self.phases.push(NpcPhase { trigger, behavior });
        self
    }
}

/// Internal lateral manoeuvre state.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct LateralMove {
    start_d: f64,
    target_d: f64,
    start_t: f64,
    duration: f64,
}

/// A scripted traffic vehicle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Npc {
    vehicle: Vehicle,
    plan: NpcPlan,
    next_phase: usize,
    target_speed: f64,
    speed_rate: f64,
    stopping: bool,
    lateral: Option<LateralMove>,
    target_d: f64,
}

impl Npc {
    /// Creates an NPC at `(s, d)` with initial speed `v` and a plan.
    #[must_use]
    pub fn new(params: VehicleParams, s: f64, d: f64, v: f64, plan: NpcPlan) -> Self {
        Self {
            vehicle: Vehicle::new(params, s, d, v),
            plan,
            next_phase: 0,
            target_speed: v,
            speed_rate: 2.0,
            stopping: false,
            lateral: None,
            target_d: d,
        }
    }

    /// The underlying vehicle.
    #[must_use]
    pub fn vehicle(&self) -> &Vehicle {
        &self.vehicle
    }

    /// Mutable access (used by scenario setup).
    pub fn vehicle_mut(&mut self) -> &mut Vehicle {
        &mut self.vehicle
    }

    /// Mutable access to the phase plan. Scenario-space search (the fuzzer)
    /// nudges trigger thresholds after construction; this is only sound
    /// before the first [`Npc::step`], while `next_phase` is still 0.
    pub fn plan_mut(&mut self) -> &mut NpcPlan {
        &mut self.plan
    }

    /// Current state shortcut.
    #[must_use]
    pub fn state(&self) -> &VehicleState {
        self.vehicle.state()
    }

    /// The lateral offset this NPC is currently trying to hold.
    #[must_use]
    pub fn target_lateral(&self) -> f64 {
        self.target_d
    }

    /// True once a `Stop` behaviour has been triggered.
    #[must_use]
    pub fn is_stopping(&self) -> bool {
        self.stopping
    }

    fn fire_ready_phases(&mut self, time: f64, ego: &VehicleState, ego_len: f64) {
        while let Some(phase) = self.plan.phases.get(self.next_phase) {
            let gap = (self.vehicle.state().s - ego.s)
                - (self.vehicle.params().length + ego_len) / 2.0;
            let ready = match phase.trigger {
                NpcTrigger::Immediately => true,
                NpcTrigger::AtTime(t) => time >= t,
                NpcTrigger::GapToEgoBelow(g) => gap.abs() <= g,
            };
            if !ready {
                break;
            }
            match phase.behavior {
                NpcBehavior::SetSpeed { target, rate } => {
                    self.target_speed = target.max(0.0);
                    self.speed_rate = rate.abs().max(0.1);
                    self.stopping = false;
                }
                NpcBehavior::Stop { decel } => {
                    self.stopping = true;
                    self.speed_rate = decel.abs().max(0.1);
                    self.target_speed = 0.0;
                }
                NpcBehavior::MoveLateral { target_d, duration } => {
                    self.lateral = Some(LateralMove {
                        start_d: self.vehicle.state().d,
                        target_d,
                        start_t: time,
                        duration: duration.max(0.5),
                    });
                    self.target_d = target_d;
                }
            }
            self.next_phase += 1;
        }
    }

    /// Advances the NPC one step.
    ///
    /// `ego` is the ego vehicle's state (for gap triggers); `time` is the
    /// simulation clock in seconds.
    pub fn step(
        &mut self,
        road: &Road,
        surface: SurfaceFriction,
        time: f64,
        ego: &VehicleState,
        ego_len: f64,
        dt: f64,
    ) {
        self.fire_ready_phases(time, ego, ego_len);

        // Longitudinal: P control on speed error, saturated at the phase rate.
        let st = *self.vehicle.state();
        let v_err = self.target_speed - st.v;
        let accel = clamp(v_err * 1.5, -self.speed_rate, self.speed_rate);

        // Lateral: smooth-step the desired offset during an active manoeuvre,
        // then track it with a P controller plus road-curvature feed-forward.
        let desired_d = match self.lateral {
            Some(mv) => {
                let t = ((time - mv.start_t) / mv.duration).clamp(0.0, 1.0);
                let smooth = t * t * (3.0 - 2.0 * t);
                let d = mv.start_d + (mv.target_d - mv.start_d) * smooth;
                if t >= 1.0 {
                    self.lateral = None;
                }
                d
            }
            None => self.target_d,
        };
        let wheelbase = self.vehicle.params().wheelbase;
        let kappa_ff = road.curvature_at(st.s);
        let steer_fb = 0.08 * (desired_d - st.d) - 0.6 * st.psi;
        let steer = (wheelbase * kappa_ff).atan() + clamp(steer_fb, -0.12, 0.12);

        let cmd = VehicleCommand::from_accel(accel, self.vehicle.params()).with_steer(steer);
        self.vehicle.step(cmd, road, surface, dt);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::road::RoadBuilder;
    use crate::units::SIM_DT;

    fn run_npc(npc: &mut Npc, road: &Road, steps: usize) {
        let ego = VehicleState {
            s: 0.0,
            v: 20.0,
            ..VehicleState::default()
        };
        let mu = SurfaceFriction::default();
        for i in 0..steps {
            npc.step(road, mu, i as f64 * SIM_DT, &ego, 4.9, SIM_DT);
        }
    }

    #[test]
    fn cruises_at_constant_speed() {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let mut npc = Npc::new(VehicleParams::sedan(), 100.0, 0.0, 13.4, NpcPlan::cruise());
        run_npc(&mut npc, &road, 1000);
        assert!((npc.state().v - 13.4).abs() < 0.5, "v={}", npc.state().v);
        assert!(npc.state().d.abs() < 0.2);
    }

    #[test]
    fn accelerates_at_time() {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let plan = NpcPlan::cruise().then(
            NpcTrigger::AtTime(2.0),
            NpcBehavior::SetSpeed {
                target: 17.9,
                rate: 1.5,
            },
        );
        let mut npc = Npc::new(VehicleParams::sedan(), 100.0, 0.0, 13.4, plan);
        run_npc(&mut npc, &road, 200); // 2 s: not yet
        assert!((npc.state().v - 13.4).abs() < 0.5);
        run_npc(&mut npc, &road, 800);
        assert!(npc.state().v > 16.0, "v={}", npc.state().v);
    }

    #[test]
    fn stops_and_holds() {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let plan = NpcPlan::cruise().then(NpcTrigger::AtTime(1.0), NpcBehavior::Stop { decel: 6.0 });
        let mut npc = Npc::new(VehicleParams::sedan(), 50.0, 0.0, 13.4, plan);
        run_npc(&mut npc, &road, 800);
        assert!(npc.state().v < 0.2, "v={}", npc.state().v);
        assert!(npc.is_stopping());
    }

    #[test]
    fn cut_in_reaches_target_lane() {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let plan = NpcPlan::cruise().then(
            NpcTrigger::AtTime(1.0),
            NpcBehavior::MoveLateral {
                target_d: 0.0,
                duration: 3.0,
            },
        );
        let mut npc = Npc::new(VehicleParams::sedan(), 60.0, 3.5, 13.4, plan);
        run_npc(&mut npc, &road, 900);
        assert!(npc.state().d.abs() < 0.5, "d={}", npc.state().d);
    }

    #[test]
    fn gap_trigger_fires_when_ego_close() {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let plan = NpcPlan::cruise().then(
            NpcTrigger::GapToEgoBelow(30.0),
            NpcBehavior::SetSpeed {
                target: 5.0,
                rate: 3.0,
            },
        );
        // NPC 100 m ahead of a stationary ego: gap stays > 30 → no change.
        let mut far = Npc::new(VehicleParams::sedan(), 100.0, 0.0, 13.4, plan.clone());
        let ego = VehicleState::default();
        let mu = SurfaceFriction::default();
        for i in 0..200 {
            far.step(&road, mu, i as f64 * SIM_DT, &ego, 4.9, SIM_DT);
        }
        assert!((far.state().v - 13.4).abs() < 0.5);
        // NPC spawned 20 m ahead: trigger fires immediately.
        let mut near = Npc::new(VehicleParams::sedan(), 20.0, 0.0, 13.4, plan);
        for i in 0..600 {
            near.step(&road, mu, i as f64 * SIM_DT, &ego, 4.9, SIM_DT);
        }
        assert!(near.state().v < 6.0, "v={}", near.state().v);
    }

    #[test]
    fn phases_fire_in_order() {
        let road = RoadBuilder::straight_highway(3000.0).build();
        // Second phase has an earlier trigger but must wait for the first.
        let plan = NpcPlan::cruise()
            .then(
                NpcTrigger::AtTime(3.0),
                NpcBehavior::SetSpeed {
                    target: 17.9,
                    rate: 1.5,
                },
            )
            .then(NpcTrigger::AtTime(1.0), NpcBehavior::Stop { decel: 5.0 });
        let mut npc = Npc::new(VehicleParams::sedan(), 100.0, 0.0, 13.4, plan);
        let ego = VehicleState {
            s: 0.0,
            v: 20.0,
            ..VehicleState::default()
        };
        let mu = SurfaceFriction::default();
        for i in 0..250 {
            npc.step(&road, mu, i as f64 * SIM_DT, &ego, 4.9, SIM_DT);
        }
        assert!(!npc.is_stopping()); // t = 2.5 s: first phase not fired yet
        for i in 250..360 {
            npc.step(&road, mu, i as f64 * SIM_DT, &ego, 4.9, SIM_DT);
        }
        assert!(npc.is_stopping()); // t = 3.5 s: both fire in order
    }

    #[test]
    fn follows_curvy_road() {
        let road = RoadBuilder::curvy_highway(4000.0).build();
        let mut npc = Npc::new(VehicleParams::sedan(), 200.0, 0.0, 15.0, NpcPlan::cruise());
        run_npc(&mut npc, &road, 3000);
        assert!(npc.state().d.abs() < 0.6, "d={}", npc.state().d);
    }
}
