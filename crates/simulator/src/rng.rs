//! Deterministic random-number derivation.
//!
//! Every simulation run derives its own stream from a `(campaign, scenario,
//! position, repetition)` tuple so all tables in the paper reproduction are
//! bit-identical across machines and thread counts.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded RNG wrapper with the small set of draws the simulator needs.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    inner: StdRng,
}

impl DeterministicRng {
    /// Creates a stream from a raw 64-bit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        Self {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives a run-specific stream from an experiment coordinate.
    ///
    /// The mixing uses distinct odd multipliers per coordinate (a
    /// SplitMix-style hash) so neighbouring runs are decorrelated.
    #[must_use]
    pub fn for_run(campaign_seed: u64, scenario: u64, position: u64, repetition: u64) -> Self {
        let mut x = campaign_seed ^ 0x9E37_79B9_7F4A_7C15;
        for (i, v) in [scenario, position, repetition].into_iter().enumerate() {
            x = x
                .wrapping_add(v.wrapping_mul(0xBF58_476D_1CE4_E5B9_u64.rotate_left(i as u32 * 7)))
                .wrapping_mul(0x94D0_49BB_1331_11EB);
            x ^= x >> 31;
        }
        Self::from_seed(x)
    }

    /// Splits off an independent sub-stream labelled by `tag` (e.g. one per
    /// subsystem), leaving this stream untouched by the child's consumption.
    #[must_use]
    pub fn split(&mut self, tag: u64) -> Self {
        let s: u64 = self.inner.gen::<u64>() ^ tag.wrapping_mul(0xD6E8_FEB8_6659_FD93);
        Self::from_seed(s)
    }

    /// Uniform sample in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        if lo >= hi {
            return lo;
        }
        self.inner.gen_range(lo..hi)
    }

    /// Zero-mean gaussian sample with the given standard deviation
    /// (Box–Muller; two uniforms per call).
    pub fn gaussian(&mut self, std_dev: f64) -> f64 {
        if std_dev <= 0.0 {
            return 0.0;
        }
        let u1: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        let u2: f64 = self.inner.gen_range(0.0..1.0);
        std_dev * (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Bernoulli draw with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_coordinates_same_stream() {
        let mut a = DeterministicRng::for_run(7, 1, 0, 3);
        let mut b = DeterministicRng::for_run(7, 1, 0, 3);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_repetitions_differ() {
        let mut a = DeterministicRng::for_run(7, 1, 0, 3);
        let mut b = DeterministicRng::for_run(7, 1, 0, 4);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn different_scenarios_differ() {
        let mut a = DeterministicRng::for_run(7, 1, 0, 3);
        let mut b = DeterministicRng::for_run(7, 2, 0, 3);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn gaussian_statistics_roughly_normal() {
        let mut rng = DeterministicRng::from_seed(42);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.gaussian(2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {}", var.sqrt());
    }

    #[test]
    fn gaussian_zero_std_is_zero() {
        let mut rng = DeterministicRng::from_seed(1);
        assert_eq!(rng.gaussian(0.0), 0.0);
        assert_eq!(rng.gaussian(-1.0), 0.0);
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = DeterministicRng::from_seed(5);
        for _ in 0..1000 {
            let v = rng.uniform(-3.0, 4.0);
            assert!((-3.0..4.0).contains(&v));
        }
        // Degenerate interval returns lo.
        assert_eq!(rng.uniform(2.0, 2.0), 2.0);
    }

    #[test]
    fn split_streams_are_independent_of_consumption() {
        let mut parent_a = DeterministicRng::from_seed(9);
        let mut parent_b = DeterministicRng::from_seed(9);
        let mut child_a = parent_a.split(1);
        let mut child_b = parent_b.split(1);
        // Consuming from one child does not affect the other's parent.
        for _ in 0..8 {
            assert_eq!(child_a.next_u64(), child_b.next_u64());
        }
        assert_eq!(parent_a.next_u64(), parent_b.next_u64());
    }
}
