//! Road geometry: piecewise line/arc centerlines with multiple lanes.
//!
//! Roads are parameterised by arc length `s` along a reference line (the
//! center of the ego vehicle's starting lane). Lateral position `d` is
//! measured to the left of the reference line. This frenet frame is what the
//! vehicle dynamics integrate in; cartesian points are derived analytically
//! per segment for plotting and distance checks.

use crate::math::Vec2;
use serde::{Deserialize, Serialize};

/// Identifier of a lane on the road. Lane `0` is the rightmost lane; the ego
/// vehicle starts in [`Road::ego_lane`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LaneId(pub u8);

impl std::fmt::Display for LaneId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lane {}", self.0)
    }
}

/// One homogeneous piece of road: a straight (`curvature == 0`) or an arc of
/// constant curvature (positive curves left).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoadSegment {
    /// Length of the segment along the reference line, metres.
    pub length: f64,
    /// Signed curvature 1/R of the reference line, 1/m. Positive is a left
    /// turn.
    pub curvature: f64,
}

impl RoadSegment {
    /// A straight segment.
    #[must_use]
    pub fn straight(length: f64) -> Self {
        Self {
            length,
            curvature: 0.0,
        }
    }

    /// An arc segment with the given signed radius (positive turns left).
    ///
    /// # Panics
    ///
    /// Panics if `radius` is zero.
    #[must_use]
    pub fn arc(length: f64, radius: f64) -> Self {
        assert!(radius != 0.0, "arc radius must be non-zero");
        Self {
            length,
            curvature: 1.0 / radius,
        }
    }
}

/// A multi-lane road with a piecewise line/arc reference line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Road {
    segments: Vec<RoadSegment>,
    /// Cumulative start `s` of each segment (same length as `segments`).
    starts: Vec<f64>,
    /// Cartesian pose at the start of each segment: position + heading.
    anchors: Vec<(Vec2, f64)>,
    total_length: f64,
    lane_width: f64,
    lane_count: u8,
    ego_lane: LaneId,
}

impl Road {
    /// Lane width in metres (MetaDrive's default highway lane is 3.5 m).
    pub const DEFAULT_LANE_WIDTH: f64 = 3.5;

    fn from_segments(segments: Vec<RoadSegment>, lane_width: f64, lane_count: u8) -> Self {
        assert!(!segments.is_empty(), "road needs at least one segment");
        assert!(lane_count >= 1);
        let mut starts = Vec::with_capacity(segments.len());
        let mut anchors = Vec::with_capacity(segments.len());
        let mut s = 0.0;
        let mut pos = Vec2::default();
        let mut heading = 0.0_f64;
        for seg in &segments {
            assert!(seg.length > 0.0, "segment length must be positive");
            starts.push(s);
            anchors.push((pos, heading));
            s += seg.length;
            if seg.curvature.abs() < 1e-12 {
                pos = pos + Vec2::new(heading.cos(), heading.sin()) * seg.length;
            } else {
                let k = seg.curvature;
                let dtheta = k * seg.length;
                let r = 1.0 / k;
                // Rotate about the arc center.
                let center = pos + Vec2::new(-heading.sin(), heading.cos()) * r;
                let rel = pos - center;
                pos = center + rel.rotated(dtheta);
                heading += dtheta;
            }
        }
        Self {
            segments,
            starts,
            anchors,
            total_length: s,
            lane_width,
            lane_count,
            ego_lane: LaneId(1.min(lane_count - 1)),
        }
    }

    /// Total length of the reference line, metres.
    #[must_use]
    pub fn total_length(&self) -> f64 {
        self.total_length
    }

    /// Lane width in metres.
    #[must_use]
    pub fn lane_width(&self) -> f64 {
        self.lane_width
    }

    /// Number of lanes.
    #[must_use]
    pub fn lane_count(&self) -> u8 {
        self.lane_count
    }

    /// Lane the ego vehicle starts in (the reference line runs through its
    /// center).
    #[must_use]
    pub fn ego_lane(&self) -> LaneId {
        self.ego_lane
    }

    /// Lateral offset of a lane's center from the reference line, metres
    /// (positive to the left).
    #[must_use]
    pub fn lane_center_offset(&self, lane: LaneId) -> f64 {
        (f64::from(lane.0) - f64::from(self.ego_lane.0)) * self.lane_width
    }

    /// The lane whose band contains lateral offset `d`, if any.
    #[must_use]
    pub fn lane_at_offset(&self, d: f64) -> Option<LaneId> {
        for lane in 0..self.lane_count {
            let c = self.lane_center_offset(LaneId(lane));
            if (d - c).abs() <= self.lane_width / 2.0 {
                return Some(LaneId(lane));
            }
        }
        None
    }

    /// Signed lateral distance from offset `d` to the nearest boundary line of
    /// the given lane: positive while inside the lane band, negative outside.
    #[must_use]
    pub fn distance_to_lane_boundary(&self, lane: LaneId, d: f64) -> f64 {
        let c = self.lane_center_offset(lane);
        self.lane_width / 2.0 - (d - c).abs()
    }

    fn segment_index(&self, s: f64) -> usize {
        if s <= 0.0 {
            return 0;
        }
        match self
            .starts
            .binary_search_by(|start| start.partial_cmp(&s).expect("finite s"))
        {
            Ok(i) => i,
            Err(0) => 0,
            Err(i) => i - 1,
        }
    }

    /// Reference-line curvature at arc length `s` (clamped to the road's
    /// extent), 1/m.
    #[must_use]
    pub fn curvature_at(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, self.total_length);
        self.segments[self.segment_index(s)].curvature
    }

    /// Reference-line heading at arc length `s`, radians.
    #[must_use]
    pub fn heading_at(&self, s: f64) -> f64 {
        let s = s.clamp(0.0, self.total_length);
        let i = self.segment_index(s);
        let (_, h0) = self.anchors[i];
        h0 + self.segments[i].curvature * (s - self.starts[i])
    }

    /// Cartesian point of the reference line at arc length `s`.
    #[must_use]
    pub fn point_at(&self, s: f64) -> Vec2 {
        let s = s.clamp(0.0, self.total_length);
        let i = self.segment_index(s);
        let (p0, h0) = self.anchors[i];
        let ds = s - self.starts[i];
        let k = self.segments[i].curvature;
        if k.abs() < 1e-12 {
            p0 + Vec2::new(h0.cos(), h0.sin()) * ds
        } else {
            let r = 1.0 / k;
            let center = p0 + Vec2::new(-h0.sin(), h0.cos()) * r;
            (p0 - center).rotated(k * ds) + center
        }
    }

    /// Cartesian point at arc length `s`, lateral offset `d` (left-positive).
    #[must_use]
    pub fn frenet_to_cartesian(&self, s: f64, d: f64) -> Vec2 {
        let p = self.point_at(s);
        let h = self.heading_at(s);
        p + Vec2::new(-h.sin(), h.cos()) * d
    }

    /// Iterates over the road's segments.
    pub fn segments(&self) -> impl Iterator<Item = &RoadSegment> {
        self.segments.iter()
    }
}

/// Builder for [`Road`] values, plus the two highway maps the paper's
/// evaluation uses (a straight and a curvy dry highway).
#[derive(Debug, Clone)]
pub struct RoadBuilder {
    segments: Vec<RoadSegment>,
    lane_width: f64,
    lane_count: u8,
}

impl RoadBuilder {
    /// Starts an empty road description.
    #[must_use]
    pub fn new() -> Self {
        Self {
            segments: Vec::new(),
            lane_width: Road::DEFAULT_LANE_WIDTH,
            lane_count: 3,
        }
    }

    /// A straight three-lane highway of the given length — the map used for
    /// the paper's 60 m initial-distance runs.
    #[must_use]
    pub fn straight_highway(length: f64) -> Self {
        let mut b = Self::new();
        b.segments.push(RoadSegment::straight(length));
        b
    }

    /// A curvy three-lane highway: alternating straights and moderate-radius
    /// highway curves (400–600 m radius, both directions), matching the
    /// "curvy road" condition under which the paper reports the ego catching
    /// up over 230 m and OpenPilot's lateral weaknesses (Table V, S3).
    #[must_use]
    pub fn curvy_highway(length: f64) -> Self {
        let mut b = Self::new();
        let pattern = [
            RoadSegment::straight(250.0),
            RoadSegment::arc(300.0, 450.0),
            RoadSegment::straight(150.0),
            RoadSegment::arc(250.0, -400.0),
            RoadSegment::straight(200.0),
            RoadSegment::arc(300.0, 600.0),
        ];
        let mut total = 0.0;
        'outer: loop {
            for seg in pattern {
                if total >= length {
                    break 'outer;
                }
                b.segments.push(seg);
                total += seg.length;
            }
        }
        b
    }

    /// Appends a straight stretch.
    #[must_use]
    pub fn straight(mut self, length: f64) -> Self {
        self.segments.push(RoadSegment::straight(length));
        self
    }

    /// Appends an arc with signed radius (positive turns left).
    #[must_use]
    pub fn arc(mut self, length: f64, radius: f64) -> Self {
        self.segments.push(RoadSegment::arc(length, radius));
        self
    }

    /// Sets the lane width (default 3.5 m).
    #[must_use]
    pub fn lane_width(mut self, width: f64) -> Self {
        assert!(width > 0.0);
        self.lane_width = width;
        self
    }

    /// Sets the number of lanes (default 3).
    #[must_use]
    pub fn lane_count(mut self, count: u8) -> Self {
        assert!(count >= 1);
        self.lane_count = count;
        self
    }

    /// Finalises the road.
    ///
    /// # Panics
    ///
    /// Panics if no segments were added.
    #[must_use]
    pub fn build(self) -> Road {
        Road::from_segments(self.segments, self.lane_width, self.lane_count)
    }
}

impl Default for RoadBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn straight_road_geometry() {
        let road = RoadBuilder::straight_highway(1000.0).build();
        assert_eq!(road.total_length(), 1000.0);
        assert_eq!(road.curvature_at(500.0), 0.0);
        assert_eq!(road.heading_at(500.0), 0.0);
        let p = road.point_at(123.0);
        assert!((p.x - 123.0).abs() < 1e-9 && p.y.abs() < 1e-9);
    }

    #[test]
    fn arc_road_total_turn() {
        // Quarter circle of radius 100: length = π/2 * 100.
        let len = std::f64::consts::FRAC_PI_2 * 100.0;
        let road = RoadBuilder::new().arc(len, 100.0).build();
        assert!((road.heading_at(len) - std::f64::consts::FRAC_PI_2).abs() < 1e-9);
        let end = road.point_at(len);
        assert!((end.x - 100.0).abs() < 1e-9, "{end:?}");
        assert!((end.y - 100.0).abs() < 1e-9, "{end:?}");
    }

    #[test]
    fn right_turn_has_negative_curvature() {
        let road = RoadBuilder::new().arc(100.0, -400.0).build();
        assert!(road.curvature_at(50.0) < 0.0);
        assert!(road.point_at(100.0).y < 0.0);
    }

    #[test]
    fn segment_lookup_at_joints() {
        let road = RoadBuilder::new().straight(100.0).arc(100.0, 200.0).build();
        assert_eq!(road.curvature_at(99.999), 0.0);
        assert!((road.curvature_at(100.0) - 1.0 / 200.0).abs() < 1e-12);
        assert!((road.curvature_at(150.0) - 1.0 / 200.0).abs() < 1e-12);
        // Clamped beyond the end.
        assert!((road.curvature_at(10_000.0) - 1.0 / 200.0).abs() < 1e-12);
        assert_eq!(road.curvature_at(-5.0), 0.0);
    }

    #[test]
    fn lane_offsets_and_lookup() {
        let road = RoadBuilder::straight_highway(100.0).build();
        assert_eq!(road.ego_lane(), LaneId(1));
        assert_eq!(road.lane_center_offset(LaneId(1)), 0.0);
        assert_eq!(road.lane_center_offset(LaneId(0)), -3.5);
        assert_eq!(road.lane_center_offset(LaneId(2)), 3.5);
        assert_eq!(road.lane_at_offset(0.4), Some(LaneId(1)));
        assert_eq!(road.lane_at_offset(-3.6), Some(LaneId(0)));
        assert_eq!(road.lane_at_offset(6.0), None);
    }

    #[test]
    fn distance_to_lane_boundary_signs() {
        let road = RoadBuilder::straight_highway(100.0).build();
        assert!((road.distance_to_lane_boundary(LaneId(1), 0.0) - 1.75).abs() < 1e-12);
        assert!(road.distance_to_lane_boundary(LaneId(1), 1.0) > 0.0);
        assert!(road.distance_to_lane_boundary(LaneId(1), 2.0) < 0.0);
    }

    #[test]
    fn curvy_highway_reaches_requested_length() {
        let road = RoadBuilder::curvy_highway(5_000.0).build();
        assert!(road.total_length() >= 5_000.0);
        // Contains both left and right curves.
        let mut has_left = false;
        let mut has_right = false;
        for seg in road.segments() {
            if seg.curvature > 0.0 {
                has_left = true;
            }
            if seg.curvature < 0.0 {
                has_right = true;
            }
        }
        assert!(has_left && has_right);
    }

    #[test]
    fn frenet_offset_is_perpendicular() {
        let road = RoadBuilder::new().arc(200.0, 300.0).build();
        let s = 120.0;
        let on = road.frenet_to_cartesian(s, 0.0);
        let left = road.frenet_to_cartesian(s, 2.0);
        assert!((on.distance(left) - 2.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn heading_continuous_across_joints(split in 10.0f64..200.0, r in 150.0f64..800.0) {
            let road = RoadBuilder::new().straight(split).arc(200.0, r).straight(100.0).build();
            for ds in [-1e-6, 1e-6] {
                let a = road.heading_at(split + ds);
                prop_assert!(a.abs() < 1e-4);
            }
            let joint2 = split + 200.0;
            let before = road.heading_at(joint2 - 1e-6);
            let after = road.heading_at(joint2 + 1e-6);
            prop_assert!((before - after).abs() < 1e-4);
        }

        #[test]
        fn point_continuous_across_joints(r in 150.0f64..800.0, sign in prop::bool::ANY) {
            let r = if sign { r } else { -r };
            let road = RoadBuilder::new().straight(100.0).arc(150.0, r).build();
            let before = road.point_at(100.0 - 1e-6);
            let after = road.point_at(100.0 + 1e-6);
            prop_assert!(before.distance(after) < 1e-4);
        }

        #[test]
        fn arc_length_matches_param(s in 0.0f64..400.0) {
            // On a straight road, cartesian x equals s exactly.
            let road = RoadBuilder::straight_highway(400.0).build();
            let p = road.point_at(s);
            prop_assert!((p.x - s).abs() < 1e-9);
        }
    }
}
