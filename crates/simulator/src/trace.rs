//! Time-series trace recording for figures and debugging.
//!
//! The paper's Figs. 5 and 6 are time series (ego speed, distance to lane
//! lines, actual vs. perceived relative distance). The recorder collects one
//! [`TraceSample`] per step; the physical fields are filled by the world and
//! the perception/intervention fields by the closed-loop platform.

use serde::{Deserialize, Serialize};

/// One recorded simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulation time, seconds.
    pub time: f64,
    /// Ego arc length, metres.
    pub ego_s: f64,
    /// Ego lateral offset, metres.
    pub ego_d: f64,
    /// Ego speed, m/s.
    pub ego_v: f64,
    /// Ego realised acceleration, m/s².
    pub ego_accel: f64,
    /// Commanded gas fraction.
    pub gas: f64,
    /// Commanded brake fraction.
    pub brake: f64,
    /// Commanded steering angle, radians.
    pub steer: f64,
    /// Ground-truth bumper-to-bumper distance to the lead vehicle, metres
    /// (`f64::INFINITY` when there is none).
    pub true_rd: f64,
    /// Perceived relative distance after any fault injection, metres
    /// (`f64::INFINITY` when no lead is reported).
    pub perceived_rd: f64,
    /// Lead vehicle speed, m/s (0 when none).
    pub lead_v: f64,
    /// Distance from the ego's body edge to the nearest lane line, metres.
    pub lane_line_distance: f64,
    /// Ground-truth time to collision, seconds (`f64::INFINITY` if opening).
    pub ttc: f64,
    /// Whether an FCW alert was active this step.
    pub fcw_alert: bool,
    /// Whether AEB braking was active this step.
    pub aeb_active: bool,
    /// Whether the driver model was braking this step.
    pub driver_braking: bool,
    /// Whether the driver model was steering this step.
    pub driver_steering: bool,
    /// Whether ML recovery mode was active this step.
    pub ml_active: bool,
    /// Whether a fault was being injected this step.
    pub fault_active: bool,
}

/// A growable recording of [`TraceSample`]s with CSV export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecorder {
    samples: Vec<TraceSample>,
    /// Record every `stride`-th step (1 = every step).
    stride: usize,
    counter: usize,
}

impl TraceRecorder {
    /// A recorder that keeps every step.
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            stride: 1,
            counter: 0,
        }
    }

    /// A recorder that keeps one sample every `stride` steps (for long
    /// campaigns where full traces would be wasteful).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn with_stride(stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            samples: Vec::new(),
            stride,
            counter: 0,
        }
    }

    /// Offers a sample; it is stored if the stride allows.
    pub fn record(&mut self, sample: TraceSample) {
        if self.counter.is_multiple_of(self.stride) {
            self.samples.push(sample);
        }
        self.counter += 1;
    }

    /// All stored samples in order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Number of stored samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serialises the trace as CSV (with header) into a string.
    ///
    /// Infinite relative distances are emitted as empty cells so plotting
    /// tools skip them.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(64 * (self.samples.len() + 1));
        out.push_str(
            "time,ego_s,ego_d,ego_v,ego_accel,gas,brake,steer,true_rd,perceived_rd,lead_v,\
             lane_line_distance,ttc,fcw,aeb,driver_brake,driver_steer,ml,fault\n",
        );
        for s in &self.samples {
            let fmt_inf = |v: f64| {
                if v.is_finite() {
                    format!("{v:.4}")
                } else {
                    String::new()
                }
            };
            out.push_str(&format!(
                "{:.2},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.5},{},{},{:.4},{:.4},{},{},{},{},{},{},{}\n",
                s.time,
                s.ego_s,
                s.ego_d,
                s.ego_v,
                s.ego_accel,
                s.gas,
                s.brake,
                s.steer,
                fmt_inf(s.true_rd),
                fmt_inf(s.perceived_rd),
                s.lead_v,
                s.lane_line_distance,
                fmt_inf(s.ttc),
                u8::from(s.fcw_alert),
                u8::from(s.aeb_active),
                u8::from(s.driver_braking),
                u8::from(s.driver_steering),
                u8::from(s.ml_active),
                u8::from(s.fault_active),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64) -> TraceSample {
        TraceSample {
            time: t,
            ego_v: 20.0,
            true_rd: 55.0,
            perceived_rd: f64::INFINITY,
            ttc: f64::INFINITY,
            ..TraceSample::default()
        }
    }

    #[test]
    fn records_every_step_by_default() {
        let mut rec = TraceRecorder::new();
        for i in 0..10 {
            rec.record(sample(i as f64 * 0.01));
        }
        assert_eq!(rec.len(), 10);
    }

    #[test]
    fn stride_subsamples() {
        let mut rec = TraceRecorder::with_stride(4);
        for i in 0..10 {
            rec.record(sample(i as f64));
        }
        assert_eq!(rec.len(), 3); // steps 0, 4, 8
        assert_eq!(rec.samples()[1].time, 4.0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = TraceRecorder::with_stride(0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut rec = TraceRecorder::new();
        rec.record(sample(0.0));
        rec.record(sample(0.01));
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time,ego_s"));
        // Infinite perceived_rd renders as an empty cell.
        let cells: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(cells[9], "");
        assert_eq!(cells[8], "55.0000");
    }

    #[test]
    fn empty_recorder_reports_empty() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.to_csv().lines().count(), 1);
    }
}
