//! Time-series trace recording for figures and debugging.
//!
//! The paper's Figs. 5 and 6 are time series (ego speed, distance to lane
//! lines, actual vs. perceived relative distance). The recorder collects one
//! [`TraceSample`] per step; the physical fields are filled by the world and
//! the perception/intervention fields by the closed-loop platform.

use serde::{Deserialize, Serialize};

/// One recorded simulation step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct TraceSample {
    /// Simulation time, seconds.
    pub time: f64,
    /// Ego arc length, metres.
    pub ego_s: f64,
    /// Ego lateral offset, metres.
    pub ego_d: f64,
    /// Ego speed, m/s.
    pub ego_v: f64,
    /// Ego realised acceleration, m/s².
    pub ego_accel: f64,
    /// Commanded gas fraction.
    pub gas: f64,
    /// Commanded brake fraction.
    pub brake: f64,
    /// Commanded steering angle, radians.
    pub steer: f64,
    /// Ground-truth bumper-to-bumper distance to the lead vehicle, metres
    /// (`f64::INFINITY` when there is none).
    pub true_rd: f64,
    /// Perceived relative distance after any fault injection, metres
    /// (`f64::INFINITY` when no lead is reported).
    pub perceived_rd: f64,
    /// Lead vehicle speed, m/s (`f64::NAN` when there is no lead — 0 would
    /// be indistinguishable from a genuinely stopped vehicle).
    pub lead_v: f64,
    /// Distance from the ego's body edge to the nearest lane line, metres.
    pub lane_line_distance: f64,
    /// Ground-truth time to collision, seconds (`f64::INFINITY` if opening).
    pub ttc: f64,
    /// Whether an FCW alert was active this step.
    pub fcw_alert: bool,
    /// Whether AEB braking was active this step.
    pub aeb_active: bool,
    /// Whether the driver model was braking this step.
    pub driver_braking: bool,
    /// Whether the driver model was steering this step.
    pub driver_steering: bool,
    /// Whether ML recovery mode was active this step.
    pub ml_active: bool,
    /// Whether a fault was being injected this step.
    pub fault_active: bool,
}

/// A growable recording of [`TraceSample`]s with CSV export.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TraceRecorder {
    samples: Vec<TraceSample>,
    /// Record every `stride`-th step (1 = every step).
    stride: usize,
    counter: usize,
}

impl TraceRecorder {
    /// A recorder that keeps every step.
    #[must_use]
    pub fn new() -> Self {
        Self {
            samples: Vec::new(),
            stride: 1,
            counter: 0,
        }
    }

    /// A recorder that keeps one sample every `stride` steps (for long
    /// campaigns where full traces would be wasteful).
    ///
    /// # Panics
    ///
    /// Panics if `stride` is zero.
    #[must_use]
    pub fn with_stride(stride: usize) -> Self {
        assert!(stride > 0, "stride must be positive");
        Self {
            samples: Vec::new(),
            stride,
            counter: 0,
        }
    }

    /// A recorder (stride 1) that reuses an existing sample buffer's
    /// allocation — the complement of [`into_samples`]: a campaign worker
    /// can cycle one buffer through thousands of runs without re-faulting
    /// fresh pages each time. The buffer is cleared first.
    ///
    /// [`into_samples`]: TraceRecorder::into_samples
    #[must_use]
    pub fn from_buffer(mut samples: Vec<TraceSample>) -> Self {
        samples.clear();
        Self {
            samples,
            stride: 1,
            counter: 0,
        }
    }

    /// Offers a sample; it is stored if the stride allows.
    pub fn record(&mut self, sample: TraceSample) {
        // `stride == 1` short-circuit: the common every-step configuration
        // must not pay a hardware divide per simulation step.
        if self.stride == 1 || self.counter.is_multiple_of(self.stride) {
            self.samples.push(sample);
        }
        self.counter += 1;
    }

    /// Discards all stored samples and resets the stride counter, keeping
    /// the allocation — lets one recorder be reused across runs without
    /// re-growing its buffer.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.counter = 0;
    }

    /// Pre-sizes the sample store for `steps` upcoming [`record`] offers
    /// (the stride is accounted for), so a run of known length records
    /// without reallocation.
    ///
    /// [`record`]: TraceRecorder::record
    pub fn reserve(&mut self, steps: usize) {
        self.samples.reserve(steps.div_ceil(self.stride));
    }

    /// All stored samples in order.
    #[must_use]
    pub fn samples(&self) -> &[TraceSample] {
        &self.samples
    }

    /// Consumes the recorder, returning the sample buffer — a zero-copy
    /// hand-off to downstream consumers (the flight-recorder writer adopts
    /// it wholesale instead of copying sample-by-sample).
    #[must_use]
    pub fn into_samples(self) -> Vec<TraceSample> {
        self.samples
    }

    /// Number of stored samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Serialises the trace as CSV (with header) into a string.
    ///
    /// Non-finite values (infinite relative distances / TTC, NaN lead
    /// speed when there is no lead) are emitted as empty cells so plotting
    /// tools skip them.
    ///
    /// Rows are streamed with [`std::fmt::Write`] straight into one output
    /// buffer — no per-row `format!` allocations (the figure harnesses
    /// export traces with 10⁴ rows each).
    #[must_use]
    pub fn to_csv(&self) -> String {
        use std::fmt::Write as _;

        // ~110 bytes per rendered row; headroom avoids the doubling steps.
        let mut out = String::with_capacity(128 * (self.samples.len() + 1));
        out.push_str(
            "time,ego_s,ego_d,ego_v,ego_accel,gas,brake,steer,true_rd,perceived_rd,lead_v,\
             lane_line_distance,ttc,fcw,aeb,driver_brake,driver_steer,ml,fault\n",
        );
        // Writing to a String cannot fail, so the write! results are
        // discarded.
        let write_opt = |out: &mut String, v: f64| {
            if v.is_finite() {
                let _ = write!(out, "{v:.4}");
            }
        };
        for s in &self.samples {
            let _ = write!(
                out,
                "{:.2},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.5},",
                s.time, s.ego_s, s.ego_d, s.ego_v, s.ego_accel, s.gas, s.brake, s.steer,
            );
            write_opt(&mut out, s.true_rd);
            out.push(',');
            write_opt(&mut out, s.perceived_rd);
            out.push(',');
            write_opt(&mut out, s.lead_v);
            let _ = write!(out, ",{:.4},", s.lane_line_distance);
            write_opt(&mut out, s.ttc);
            let _ = writeln!(
                out,
                ",{},{},{},{},{},{}",
                u8::from(s.fcw_alert),
                u8::from(s.aeb_active),
                u8::from(s.driver_braking),
                u8::from(s.driver_steering),
                u8::from(s.ml_active),
                u8::from(s.fault_active),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(t: f64) -> TraceSample {
        TraceSample {
            time: t,
            ego_v: 20.0,
            true_rd: 55.0,
            perceived_rd: f64::INFINITY,
            lead_v: f64::NAN,
            ttc: f64::INFINITY,
            ..TraceSample::default()
        }
    }

    #[test]
    fn records_every_step_by_default() {
        let mut rec = TraceRecorder::new();
        for i in 0..10 {
            rec.record(sample(i as f64 * 0.01));
        }
        assert_eq!(rec.len(), 10);
    }

    #[test]
    fn stride_subsamples() {
        let mut rec = TraceRecorder::with_stride(4);
        for i in 0..10 {
            rec.record(sample(i as f64));
        }
        assert_eq!(rec.len(), 3); // steps 0, 4, 8
        assert_eq!(rec.samples()[1].time, 4.0);
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_panics() {
        let _ = TraceRecorder::with_stride(0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut rec = TraceRecorder::new();
        rec.record(sample(0.0));
        rec.record(sample(0.01));
        let csv = rec.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("time,ego_s"));
        let cells: Vec<&str> = lines[1].split(',').collect();
        assert_eq!(cells.len(), 19);
        // Infinite perceived_rd and NaN lead_v render as empty cells.
        assert_eq!(cells[9], "");
        assert_eq!(cells[10], "");
        assert_eq!(cells[8], "55.0000");
        assert_eq!(cells[12], "");
        assert_eq!(cells[18], "0");
    }

    #[test]
    fn present_lead_speed_renders_numeric() {
        let mut rec = TraceRecorder::new();
        rec.record(TraceSample {
            lead_v: 17.5,
            ..sample(0.0)
        });
        let csv = rec.to_csv();
        let row = csv.lines().nth(1).expect("one data row");
        assert_eq!(row.split(',').nth(10), Some("17.5000"));
    }

    #[test]
    fn clear_resets_samples_and_stride_phase() {
        let mut rec = TraceRecorder::with_stride(3);
        for i in 0..5 {
            rec.record(sample(i as f64)); // keeps steps 0, 3
        }
        assert_eq!(rec.len(), 2);
        rec.clear();
        assert!(rec.is_empty());
        // After clear the stride phase restarts: the next offer is stored.
        rec.record(sample(9.0));
        assert_eq!(rec.len(), 1);
        assert_eq!(rec.samples()[0].time, 9.0);
    }

    #[test]
    fn reserve_accounts_for_stride() {
        let mut rec = TraceRecorder::with_stride(4);
        rec.reserve(10); // stores ceil(10/4) = 3 samples
        let cap = rec.samples.capacity();
        assert!(cap >= 3, "capacity {cap}");
        for i in 0..10 {
            rec.record(sample(i as f64));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.samples.capacity(), cap, "no reallocation");
    }

    #[test]
    fn empty_recorder_reports_empty() {
        let rec = TraceRecorder::new();
        assert!(rec.is_empty());
        assert_eq!(rec.to_csv().lines().count(), 1);
    }
}
