//! Physical constants and unit conversions used throughout the platform.
//!
//! The paper mixes unit systems (mph for cruise speeds, metres and m/s² for
//! everything else); all internal state is SI and these helpers convert at
//! the boundary.

/// Standard gravity in m/s².
pub const GRAVITY: f64 = 9.81;

/// Simulation step, in seconds. The paper runs 10 000 steps of ~10 ms each
/// (100 s per simulation) at OpenPilot's 100 Hz control frequency.
pub const SIM_DT: f64 = 0.01;

/// Number of steps in one full simulation run (100 s at 100 Hz).
pub const STEPS_PER_RUN: usize = 10_000;

/// Metres in one mile.
pub const METERS_PER_MILE: f64 = 1_609.344;

/// Converts miles per hour to metres per second.
///
/// ```
/// let v = adas_simulator::units::mph(50.0);
/// assert!((v - 22.352).abs() < 1e-3);
/// ```
#[must_use]
pub fn mph(miles_per_hour: f64) -> f64 {
    miles_per_hour * METERS_PER_MILE / 3_600.0
}

/// Converts metres per second to miles per hour.
#[must_use]
pub fn to_mph(meters_per_second: f64) -> f64 {
    meters_per_second * 3_600.0 / METERS_PER_MILE
}

/// Converts kilometres per hour to metres per second.
#[must_use]
pub fn kph(kilometers_per_hour: f64) -> f64 {
    kilometers_per_hour / 3.6
}

/// Converts degrees to radians.
#[must_use]
pub fn deg(degrees: f64) -> f64 {
    degrees.to_radians()
}

/// Converts radians to degrees.
#[must_use]
pub fn to_deg(radians: f64) -> f64 {
    radians.to_degrees()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mph_round_trips() {
        for v in [0.0, 10.0, 30.0, 50.0, 75.5] {
            assert!((to_mph(mph(v)) - v).abs() < 1e-9);
        }
    }

    #[test]
    fn fifty_mph_is_paper_cruise_speed() {
        // The paper's ego vehicle cruises at 50 mph ≈ 22.35 m/s.
        assert!((mph(50.0) - 22.352).abs() < 1e-3);
    }

    #[test]
    fn thirty_mph_is_lead_speed() {
        assert!((mph(30.0) - 13.411).abs() < 1e-3);
    }

    #[test]
    fn kph_conversion() {
        assert!((kph(36.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn degree_round_trip() {
        assert!((to_deg(deg(10.0)) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn run_length_is_100_seconds() {
        assert!((STEPS_PER_RUN as f64 * SIM_DT - 100.0).abs() < 1e-9);
    }
}
