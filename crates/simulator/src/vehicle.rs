//! Friction-limited kinematic bicycle vehicle model.
//!
//! Vehicles are integrated in the road's frenet frame: arc length `s`,
//! left-positive lateral offset `d`, and heading error `psi` relative to the
//! local road tangent. Longitudinal and lateral tyre forces share a friction
//! budget (a simple friction ellipse), which is what makes icy-road runs in
//! the Table VIII reproduction lose both braking and steering authority.

use crate::friction::SurfaceFriction;
use crate::math::{approach, clamp, wrap_angle};
use crate::road::Road;
use serde::{Deserialize, Serialize};

/// Static parameters of a vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VehicleParams {
    /// Overall body length, metres.
    pub length: f64,
    /// Overall body width, metres.
    pub width: f64,
    /// Wheelbase used by the bicycle model, metres.
    pub wheelbase: f64,
    /// Engine-limited maximum drive acceleration, m/s².
    pub engine_accel_limit: f64,
    /// Deceleration at 100 % brake command on a dry road, m/s².
    pub full_brake_decel: f64,
    /// Maximum front-wheel steering angle magnitude, radians.
    pub max_steer_angle: f64,
    /// First-order time constant of the gas/brake actuators, seconds.
    pub pedal_tau: f64,
    /// Maximum steering-angle slew rate, rad/s.
    pub steer_rate_limit: f64,
}

impl VehicleParams {
    /// A typical mid-size passenger sedan (the paper's ego and lead vehicles
    /// are MetaDrive's default vehicle, ~4.9 m long).
    #[must_use]
    pub fn sedan() -> Self {
        Self {
            length: 4.9,
            width: 1.85,
            wheelbase: 2.7,
            engine_accel_limit: 3.0,
            full_brake_decel: 9.8,
            max_steer_angle: 0.5,
            pedal_tau: 0.15,
            steer_rate_limit: 0.7,
        }
    }
}

impl Default for VehicleParams {
    fn default() -> Self {
        Self::sedan()
    }
}

/// Actuator command for one 10 ms step.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VehicleCommand {
    /// Throttle fraction in `[0, 1]`.
    pub gas: f64,
    /// Brake fraction in `[0, 1]`; `1.0` is a full emergency brake.
    pub brake: f64,
    /// Desired front-wheel angle, radians (positive steers left).
    pub steer: f64,
}

impl VehicleCommand {
    /// No pedal input, wheels straight.
    #[must_use]
    pub fn coast() -> Self {
        Self::default()
    }

    /// Pure longitudinal command from a desired acceleration, m/s².
    ///
    /// Positive values map to throttle against the engine limit; negative
    /// values map to brake fraction against the full-brake deceleration.
    #[must_use]
    pub fn from_accel(accel: f64, params: &VehicleParams) -> Self {
        if accel >= 0.0 {
            Self {
                gas: clamp(accel / params.engine_accel_limit, 0.0, 1.0),
                brake: 0.0,
                steer: 0.0,
            }
        } else {
            Self {
                gas: 0.0,
                brake: clamp(-accel / params.full_brake_decel, 0.0, 1.0),
                steer: 0.0,
            }
        }
    }

    /// Returns this command with the steering angle replaced.
    #[must_use]
    pub fn with_steer(mut self, steer: f64) -> Self {
        self.steer = steer;
        self
    }

    /// Clamps all components into their physical ranges. `NaN` inputs are
    /// treated as zero; infinities clamp to the range edge.
    #[must_use]
    pub fn sanitized(self, params: &VehicleParams) -> Self {
        let clean = |v: f64| if v.is_nan() { 0.0 } else { v };
        Self {
            gas: clamp(clean(self.gas), 0.0, 1.0),
            brake: clamp(clean(self.brake), 0.0, 1.0),
            steer: clamp(
                clean(self.steer),
                -params.max_steer_angle,
                params.max_steer_angle,
            ),
        }
    }
}

/// Dynamic state of a vehicle in the frenet frame.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct VehicleState {
    /// Arc length along the road reference line, metres.
    pub s: f64,
    /// Lateral offset from the reference line (left positive), metres.
    pub d: f64,
    /// Heading error relative to the local road tangent, radians.
    pub psi: f64,
    /// Forward speed, m/s (never negative; the model does not reverse).
    pub v: f64,
    /// Realised longitudinal acceleration last step, m/s².
    pub accel: f64,
    /// Actual front-wheel angle after slew limiting, radians.
    pub steer: f64,
    /// Filtered throttle actuator position in `[0, 1]`.
    pub gas_actual: f64,
    /// Filtered brake actuator position in `[0, 1]`.
    pub brake_actual: f64,
}

/// A vehicle: parameters plus integrated state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vehicle {
    params: VehicleParams,
    state: VehicleState,
}

impl Vehicle {
    /// Creates a vehicle at `(s, d)` travelling at `v` along the road.
    #[must_use]
    pub fn new(params: VehicleParams, s: f64, d: f64, v: f64) -> Self {
        Self {
            params,
            state: VehicleState {
                s,
                d,
                v: v.max(0.0),
                ..VehicleState::default()
            },
        }
    }

    /// Static parameters.
    #[must_use]
    pub fn params(&self) -> &VehicleParams {
        &self.params
    }

    /// Current dynamic state.
    #[must_use]
    pub fn state(&self) -> &VehicleState {
        &self.state
    }

    /// Mutable state access for scenario scripting (NPC teleports etc.).
    pub fn state_mut(&mut self) -> &mut VehicleState {
        &mut self.state
    }

    /// Arc length of the front bumper.
    #[must_use]
    pub fn front_s(&self) -> f64 {
        self.state.s + self.params.length / 2.0
    }

    /// Arc length of the rear bumper.
    #[must_use]
    pub fn rear_s(&self) -> f64 {
        self.state.s - self.params.length / 2.0
    }

    /// Advances the vehicle by `dt` under `command` on `road` with `surface`
    /// friction.
    ///
    /// The integration order is: actuator filters → friction-ellipse
    /// limited accelerations → kinematics. Speed never goes negative.
    pub fn step(&mut self, command: VehicleCommand, road: &Road, surface: SurfaceFriction, dt: f64) {
        let cmd = command.sanitized(&self.params);
        let st = &mut self.state;

        // First-order pedal actuators; rate-limited steering.
        let alpha = (dt / self.params.pedal_tau).min(1.0);
        st.gas_actual += (cmd.gas - st.gas_actual) * alpha;
        st.brake_actual += (cmd.brake - st.brake_actual) * alpha;
        st.steer = approach(st.steer, cmd.steer, self.params.steer_rate_limit * dt);

        // Lateral demand from the bicycle model, limited by the lateral
        // friction budget (understeer: the vehicle tracks a wider curve than
        // commanded once grip runs out).
        let kappa_cmd = st.steer.tan() / self.params.wheelbase;
        let kappa_vehicle = if st.v > 0.5 {
            let kappa_max = surface.max_lateral_accel() / (st.v * st.v);
            clamp(kappa_cmd, -kappa_max, kappa_max)
        } else {
            kappa_cmd
        };
        let lateral_accel = st.v * st.v * kappa_vehicle;

        // Longitudinal acceleration demand: engine minus brakes minus drag.
        let drag = 0.001 * st.v * st.v + 0.01;
        let mut accel = st.gas_actual * surface.max_drive_accel(self.params.engine_accel_limit)
            - st.brake_actual * self.params.full_brake_decel
            - if st.v > 0.0 { drag } else { 0.0 };

        // Combined-slip budget: remaining longitudinal grip shrinks with
        // lateral utilisation.
        let mu_g = surface.mu * crate::units::GRAVITY;
        let long_budget = (mu_g * mu_g - lateral_accel * lateral_accel).max(0.0).sqrt();
        accel = clamp(accel, -long_budget, long_budget.min(self.params.engine_accel_limit));

        // Kinematics in the frenet frame.
        let kappa_road = road.curvature_at(st.s);
        let denom = (1.0 - st.d * kappa_road).max(0.2);
        let s_dot = st.v * st.psi.cos() / denom;
        let d_dot = st.v * st.psi.sin();
        let psi_dot = st.v * kappa_vehicle - kappa_road * s_dot;

        st.s += s_dot * dt;
        st.d += d_dot * dt;
        st.psi = wrap_angle(st.psi + psi_dot * dt);
        let new_v = (st.v + accel * dt).max(0.0);
        st.accel = (new_v - st.v) / dt;
        st.v = new_v;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::friction::FrictionCondition;
    use crate::road::RoadBuilder;
    use crate::units::SIM_DT;
    use proptest::prelude::*;

    fn dry() -> SurfaceFriction {
        SurfaceFriction::default()
    }

    fn drive(v: &mut Vehicle, road: &Road, cmd: VehicleCommand, steps: usize, mu: SurfaceFriction) {
        for _ in 0..steps {
            v.step(cmd, road, mu, SIM_DT);
        }
    }

    #[test]
    fn accelerates_from_rest() {
        let road = RoadBuilder::straight_highway(2000.0).build();
        let mut car = Vehicle::new(VehicleParams::sedan(), 0.0, 0.0, 0.0);
        drive(
            &mut car,
            &road,
            VehicleCommand {
                gas: 1.0,
                ..VehicleCommand::default()
            },
            500,
            dry(),
        );
        assert!(car.state().v > 10.0, "v = {}", car.state().v);
        assert!(car.state().s > 20.0);
    }

    #[test]
    fn full_brake_stops_quickly() {
        let road = RoadBuilder::straight_highway(2000.0).build();
        let mut car = Vehicle::new(VehicleParams::sedan(), 0.0, 0.0, 20.0);
        let mut steps = 0;
        while car.state().v > 0.0 && steps < 1000 {
            car.step(
                VehicleCommand {
                    brake: 1.0,
                    ..VehicleCommand::default()
                },
                &road,
                dry(),
                SIM_DT,
            );
            steps += 1;
        }
        // ~20/(0.9*9.81) ≈ 2.3 s plus actuator lag.
        let t = steps as f64 * SIM_DT;
        assert!(t > 1.8 && t < 3.2, "stop time {t}");
    }

    #[test]
    fn speed_never_negative() {
        let road = RoadBuilder::straight_highway(100.0).build();
        let mut car = Vehicle::new(VehicleParams::sedan(), 0.0, 0.0, 1.0);
        drive(
            &mut car,
            &road,
            VehicleCommand {
                brake: 1.0,
                ..VehicleCommand::default()
            },
            300,
            dry(),
        );
        assert_eq!(car.state().v, 0.0);
    }

    #[test]
    fn tracks_curve_with_matching_steer() {
        // Steering so that vehicle curvature equals road curvature keeps the
        // lateral offset near zero.
        let radius = 400.0;
        let road = RoadBuilder::new().arc(1000.0, radius).build();
        let params = VehicleParams::sedan();
        let steer = (params.wheelbase / radius).atan();
        let mut car = Vehicle::new(params, 0.0, 0.0, 20.0);
        car.state_mut().steer = steer; // pre-settled actuator
        drive(
            &mut car,
            &road,
            VehicleCommand {
                gas: 0.25,
                brake: 0.0,
                steer,
            },
            1000,
            dry(),
        );
        assert!(car.state().d.abs() < 0.15, "d = {}", car.state().d);
        assert!(car.state().psi.abs() < 0.02);
    }

    #[test]
    fn understeers_on_ice() {
        // On ice at speed, the same steering input yields much less lateral
        // motion because curvature saturates at a_lat_max / v².
        let road = RoadBuilder::straight_highway(3000.0).build();
        let params = VehicleParams::sedan();
        let cmd = VehicleCommand {
            gas: 0.0,
            brake: 0.0,
            steer: 0.2,
        };
        let mut dry_car = Vehicle::new(params, 0.0, 0.0, 25.0);
        let mut icy_car = Vehicle::new(params, 0.0, 0.0, 25.0);
        drive(&mut dry_car, &road, cmd, 100, dry());
        drive(
            &mut icy_car,
            &road,
            cmd,
            100,
            SurfaceFriction::new(FrictionCondition::Off75),
        );
        assert!(dry_car.state().d > icy_car.state().d * 1.5);
    }

    #[test]
    fn cornering_consumes_braking_budget() {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let params = VehicleParams::sedan();
        let mut straight = Vehicle::new(params, 0.0, 0.0, 25.0);
        let mut turning = Vehicle::new(params, 0.0, 0.0, 25.0);
        // Pre-set steering so the lateral demand is active immediately.
        turning.state_mut().steer = 0.12;
        for _ in 0..50 {
            straight.step(
                VehicleCommand {
                    brake: 1.0,
                    ..VehicleCommand::default()
                },
                &road,
                dry(),
                SIM_DT,
            );
            turning.step(
                VehicleCommand {
                    gas: 0.0,
                    brake: 1.0,
                    steer: 0.12,
                },
                &road,
                dry(),
                SIM_DT,
            );
        }
        assert!(straight.state().v < turning.state().v, "combined slip should weaken braking");
    }

    #[test]
    fn actuator_lag_delays_gas() {
        let road = RoadBuilder::straight_highway(100.0).build();
        let mut car = Vehicle::new(VehicleParams::sedan(), 0.0, 0.0, 0.0);
        car.step(
            VehicleCommand {
                gas: 1.0,
                ..VehicleCommand::default()
            },
            &road,
            dry(),
            SIM_DT,
        );
        assert!(car.state().gas_actual < 0.2);
    }

    #[test]
    fn sanitize_rejects_non_finite() {
        let p = VehicleParams::sedan();
        let c = VehicleCommand {
            gas: f64::NAN,
            brake: f64::INFINITY,
            steer: -9.0,
        }
        .sanitized(&p);
        assert_eq!(c.gas, 0.0);
        assert_eq!(c.brake, 1.0);
        assert_eq!(c.steer, -p.max_steer_angle);
    }

    #[test]
    fn from_accel_maps_both_signs() {
        let p = VehicleParams::sedan();
        let up = VehicleCommand::from_accel(1.5, &p);
        assert!((up.gas - 0.5).abs() < 1e-12 && up.brake == 0.0);
        let down = VehicleCommand::from_accel(-4.9, &p);
        assert!(down.gas == 0.0 && (down.brake - 0.5).abs() < 1e-12);
    }

    proptest! {
        #[test]
        fn dynamics_remain_finite(
            gas in 0.0f64..1.0,
            brake in 0.0f64..1.0,
            steer in -0.5f64..0.5,
            v0 in 0.0f64..40.0,
        ) {
            let road = RoadBuilder::curvy_highway(4000.0).build();
            let mut car = Vehicle::new(VehicleParams::sedan(), 10.0, 0.0, v0);
            let cmd = VehicleCommand { gas, brake, steer };
            for _ in 0..200 {
                car.step(cmd, &road, dry(), SIM_DT);
            }
            let st = car.state();
            prop_assert!(st.s.is_finite() && st.d.is_finite() && st.v.is_finite());
            prop_assert!(st.v >= 0.0);
            prop_assert!(st.psi.abs() <= std::f64::consts::PI + 1e-9);
        }

        #[test]
        fn monotone_progress_forward(v0 in 5.0f64..35.0) {
            let road = RoadBuilder::straight_highway(5000.0).build();
            let mut car = Vehicle::new(VehicleParams::sedan(), 0.0, 0.0, v0);
            let mut last_s = 0.0;
            for _ in 0..300 {
                car.step(VehicleCommand::coast(), &road, dry(), SIM_DT);
                prop_assert!(car.state().s >= last_s);
                last_s = car.state().s;
            }
        }
    }
}
