//! The closed-loop world: ego vehicle, scripted traffic, collision checks.

use crate::collision::{
    center_departed_lane, contact_is_longitudinal, vehicles_overlap, CollisionEvent,
    LaneDeparture,
};
use crate::friction::{surface_in_zones, FrictionCondition, FrictionZone, SurfaceFriction};
use crate::npc::Npc;
use crate::road::Road;
use crate::units::SIM_DT;
use crate::vehicle::{Vehicle, VehicleCommand, VehicleParams};
use serde::{Deserialize, Serialize};

/// World construction options.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Road-surface condition (Table VIII sweeps this).
    pub friction: FrictionCondition,
    /// Parameters for the ego vehicle.
    pub ego_params: VehicleParams,
    /// Integration step, seconds.
    pub dt: f64,
}

impl Default for WorldConfig {
    fn default() -> Self {
        Self {
            friction: FrictionCondition::Default,
            ego_params: VehicleParams::sedan(),
            dt: SIM_DT,
        }
    }
}

/// Ground-truth observation of the lead vehicle in the ego's lane.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeadObservation {
    /// Bumper-to-bumper distance, metres (>= 0 outside of a collision).
    pub distance: f64,
    /// Closing speed: ego speed minus lead speed, m/s (positive when
    /// approaching).
    pub closing_speed: f64,
    /// Lead vehicle forward speed, m/s.
    pub lead_speed: f64,
    /// Lead vehicle lateral offset, metres.
    pub lead_d: f64,
    /// Index of the NPC serving as lead.
    pub npc_index: usize,
}

impl LeadObservation {
    /// Ground-truth time to collision, seconds; infinite when not closing.
    #[must_use]
    pub fn ttc(&self) -> f64 {
        if self.closing_speed > 1e-6 && self.distance >= 0.0 {
            self.distance / self.closing_speed
        } else {
            f64::INFINITY
        }
    }
}

/// The simulated world.
#[derive(Debug, Clone)]
pub struct World {
    config: WorldConfig,
    road: Road,
    surface: SurfaceFriction,
    friction_zones: Vec<FrictionZone>,
    ego: Option<Vehicle>,
    npcs: Vec<Npc>,
    prev_npc_d: Vec<f64>,
    time: f64,
    steps: u64,
    first_collision: Option<CollisionEvent>,
    first_departure: Option<LaneDeparture>,
}

impl World {
    /// Creates an empty world over `road`.
    #[must_use]
    pub fn new(config: WorldConfig, road: Road) -> Self {
        let surface = SurfaceFriction::new(config.friction);
        Self {
            config,
            road,
            surface,
            friction_zones: Vec::new(),
            ego: None,
            npcs: Vec::new(),
            prev_npc_d: Vec::new(),
            time: 0.0,
            steps: 0,
            first_collision: None,
            first_departure: None,
        }
    }

    /// Spawns the ego vehicle at arc length `s` (lane center) with speed `v`.
    /// Replaces any previous ego.
    pub fn spawn_ego(&mut self, s: f64, v: f64) {
        self.ego = Some(Vehicle::new(self.config.ego_params, s, 0.0, v));
    }

    /// Adds a scripted vehicle and returns its index.
    pub fn add_npc(&mut self, npc: Npc) -> usize {
        self.prev_npc_d.push(npc.state().d);
        self.npcs.push(npc);
        self.npcs.len() - 1
    }

    /// The road being driven.
    #[must_use]
    pub fn road(&self) -> &Road {
        &self.road
    }

    /// The active surface friction.
    #[must_use]
    pub fn surface(&self) -> SurfaceFriction {
        self.surface
    }

    /// Adds a localised friction band. Vehicles inside the band drive on
    /// the base surface scaled by the zone's multiplier.
    pub fn add_friction_zone(&mut self, zone: FrictionZone) {
        self.friction_zones.push(zone);
    }

    /// The declared friction bands.
    #[must_use]
    pub fn friction_zones(&self) -> &[FrictionZone] {
        &self.friction_zones
    }

    /// The effective surface at arc length `s`, accounting for zones.
    #[must_use]
    pub fn surface_at(&self, s: f64) -> SurfaceFriction {
        surface_in_zones(self.surface, &self.friction_zones, s)
    }

    /// Simulation clock, seconds.
    #[must_use]
    pub fn time(&self) -> f64 {
        self.time
    }

    /// Steps executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The ego vehicle.
    ///
    /// # Panics
    ///
    /// Panics if no ego has been spawned.
    #[must_use]
    pub fn ego(&self) -> &Vehicle {
        self.ego.as_ref().expect("ego vehicle not spawned")
    }

    /// All scripted vehicles.
    #[must_use]
    pub fn npcs(&self) -> &[Npc] {
        &self.npcs
    }

    /// Mutable NPC access for scenario scripting.
    pub fn npc_mut(&mut self, index: usize) -> &mut Npc {
        &mut self.npcs[index]
    }

    /// First ego collision, if any occurred.
    #[must_use]
    pub fn collision(&self) -> Option<CollisionEvent> {
        self.first_collision
    }

    /// First ego lane departure (center crossing a boundary of its original
    /// lane), if any occurred.
    #[must_use]
    pub fn lane_departure(&self) -> Option<LaneDeparture> {
        self.first_departure
    }

    /// Ground truth about the nearest in-lane vehicle ahead of the ego,
    /// with the default (radar-like) lateral acceptance window.
    ///
    /// This is the "independent sensor" view used by the AEBS-independent
    /// configuration, the human driver's eyes, the ML baseline's redundant
    /// sensor, and the hazard detectors.
    #[must_use]
    pub fn lead_observation(&self) -> Option<LeadObservation> {
        self.lead_observation_within(0.8)
    }

    /// Like [`World::lead_observation`], but with a caller-chosen lateral
    /// acceptance window, expressed as a fraction of the lane width.
    ///
    /// The camera DNN uses a narrower window (≈0.45) than a radar (≈0.8):
    /// once the ego drifts under an ALC attack, the *camera* loses the lead
    /// first — the re-acceleration that follows is what lets the AEBS stop
    /// lateral accidents in the paper's curvature-attack rows.
    #[must_use]
    pub fn lead_observation_within(&self, window_frac: f64) -> Option<LeadObservation> {
        let ego = self.ego.as_ref()?;
        let mut best: Option<LeadObservation> = None;
        for (i, npc) in self.npcs.iter().enumerate() {
            let gap = npc.vehicle().rear_s() - ego.front_s();
            let lateral = (npc.state().d - ego.state().d).abs();
            if gap < -0.5 || lateral > self.road.lane_width() * window_frac {
                continue;
            }
            let obs = LeadObservation {
                distance: gap.max(0.0),
                closing_speed: ego.state().v - npc.state().v,
                lead_speed: npc.state().v,
                lead_d: npc.state().d,
                npc_index: i,
            };
            if best.as_ref().is_none_or(|b| obs.distance < b.distance) {
                best = Some(obs);
            }
        }
        best
    }

    /// True when a vehicle in an adjacent lane is moving laterally towards
    /// the ego's lane within a threatening longitudinal range — the paper's
    /// "other vehicle cutting in" driver-reaction trigger.
    #[must_use]
    pub fn cut_in_threat(&self) -> bool {
        let Some(ego) = self.ego.as_ref() else {
            return false;
        };
        let lane_w = self.road.lane_width();
        for (i, npc) in self.npcs.iter().enumerate() {
            let d = npc.state().d;
            let was = self.prev_npc_d.get(i).copied().unwrap_or(d);
            let toward_ego = (d - ego.state().d).abs() < (was - ego.state().d).abs() - 1e-6;
            let adjacent = (d - ego.state().d).abs() < lane_w * 1.2
                && (d - ego.state().d).abs() > ego.params().width / 2.0;
            let ahead = npc.state().s - ego.state().s;
            if toward_ego && adjacent && (-5.0..60.0).contains(&ahead) {
                return true;
            }
        }
        false
    }

    /// Distance from the ego body edge to the nearest boundary line of its
    /// original lane, metres (Table V metric).
    #[must_use]
    pub fn ego_lane_line_distance(&self) -> f64 {
        crate::collision::distance_to_lane_line(&self.road, self.road.ego_lane(), self.ego())
    }

    /// Advances the world by one step with `ego_command`.
    ///
    /// NPCs move first (their triggers see the pre-step ego state), then the
    /// ego integrates, then collision/departure detectors latch first events.
    pub fn step(&mut self, ego_command: VehicleCommand) {
        let dt = self.config.dt;
        let ego_state = *self.ego().state();
        let ego_len = self.ego().params().length;

        for (i, npc) in self.npcs.iter_mut().enumerate() {
            self.prev_npc_d[i] = npc.state().d;
            let surface = surface_in_zones(self.surface, &self.friction_zones, npc.state().s);
            npc.step(&self.road, surface, self.time, &ego_state, ego_len, dt);
        }

        let surface = surface_in_zones(self.surface, &self.friction_zones, ego_state.s);
        let road = &self.road;
        let ego = self.ego.as_mut().expect("ego vehicle not spawned");
        ego.step(ego_command, road, surface, dt);

        self.time += dt;
        self.steps += 1;

        if self.first_collision.is_none() {
            let ego = self.ego.as_ref().expect("ego exists");
            for (i, npc) in self.npcs.iter().enumerate() {
                if vehicles_overlap(ego, npc.vehicle()) {
                    self.first_collision = Some(CollisionEvent {
                        time: self.time,
                        npc_index: i,
                        closing_speed: ego.state().v - npc.state().v,
                        longitudinal: contact_is_longitudinal(ego, npc.vehicle()),
                    });
                    break;
                }
            }
        }
        if self.first_departure.is_none() {
            let ego = self.ego.as_ref().expect("ego exists");
            if center_departed_lane(&self.road, self.road.ego_lane(), ego) {
                self.first_departure = Some(LaneDeparture {
                    time: self.time,
                    offset: ego.state().d,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::npc::{NpcBehavior, NpcPlan, NpcTrigger};
    use crate::road::RoadBuilder;
    use crate::units::mph;

    fn simple_world() -> World {
        let road = RoadBuilder::straight_highway(3000.0).build();
        World::new(WorldConfig::default(), road)
    }

    #[test]
    fn lead_observation_finds_nearest_in_lane() {
        let mut w = simple_world();
        w.spawn_ego(0.0, mph(50.0));
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            120.0,
            0.0,
            mph(30.0),
            NpcPlan::cruise(),
        ));
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            60.0,
            0.0,
            mph(30.0),
            NpcPlan::cruise(),
        ));
        // Adjacent lane vehicle must be ignored.
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            30.0,
            3.5,
            mph(30.0),
            NpcPlan::cruise(),
        ));
        let obs = w.lead_observation().expect("lead present");
        assert_eq!(obs.npc_index, 1);
        assert!((obs.distance - (60.0 - 4.9)).abs() < 1e-9);
        assert!(obs.closing_speed > 0.0);
    }

    #[test]
    fn no_lead_when_alone() {
        let mut w = simple_world();
        w.spawn_ego(0.0, 20.0);
        assert!(w.lead_observation().is_none());
    }

    #[test]
    fn ttc_infinite_when_opening() {
        let obs = LeadObservation {
            distance: 50.0,
            closing_speed: -2.0,
            lead_speed: 25.0,
            lead_d: 0.0,
            npc_index: 0,
        };
        assert!(obs.ttc().is_infinite());
        let closing = LeadObservation {
            closing_speed: 10.0,
            ..obs
        };
        assert!((closing.ttc() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn collision_latched_once() {
        let mut w = simple_world();
        w.spawn_ego(0.0, 25.0);
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            40.0,
            0.0,
            0.0,
            NpcPlan::cruise(),
        ));
        for _ in 0..800 {
            w.step(VehicleCommand {
                gas: 0.4,
                ..VehicleCommand::default()
            });
        }
        let hit = w.collision().expect("should collide with stopped car");
        assert!(hit.longitudinal);
        assert!(hit.time > 0.5);
        let first_time = hit.time;
        for _ in 0..100 {
            w.step(VehicleCommand::coast());
        }
        assert_eq!(w.collision().expect("still latched").time, first_time);
    }

    #[test]
    fn lane_departure_detected() {
        let mut w = simple_world();
        w.spawn_ego(0.0, 20.0);
        for _ in 0..800 {
            w.step(VehicleCommand {
                gas: 0.2,
                brake: 0.0,
                steer: 0.1,
            });
            if w.lane_departure().is_some() {
                break;
            }
        }
        let dep = w.lane_departure().expect("steady steer departs lane");
        assert!(dep.offset.abs() > 1.7);
    }

    #[test]
    fn cut_in_threat_detection() {
        let mut w = simple_world();
        w.spawn_ego(0.0, 20.0);
        let plan = NpcPlan::cruise().then(
            NpcTrigger::AtTime(0.5),
            NpcBehavior::MoveLateral {
                target_d: 0.0,
                duration: 3.0,
            },
        );
        w.add_npc(Npc::new(VehicleParams::sedan(), 25.0, 3.5, 18.0, plan));
        let mut seen = false;
        for _ in 0..400 {
            w.step(VehicleCommand::coast());
            seen |= w.cut_in_threat();
        }
        assert!(seen, "cut-in manoeuvre should be flagged");
    }

    #[test]
    fn no_cut_in_threat_from_stable_neighbor() {
        let mut w = simple_world();
        w.spawn_ego(0.0, 20.0);
        w.add_npc(Npc::new(
            VehicleParams::sedan(),
            25.0,
            3.5,
            20.0,
            NpcPlan::cruise(),
        ));
        let mut seen = false;
        for _ in 0..300 {
            w.step(VehicleCommand::coast());
            seen |= w.cut_in_threat();
        }
        assert!(!seen);
    }

    #[test]
    fn friction_zone_weakens_braking_inside_the_band() {
        let brake_distance = |zones: &[FrictionZone]| {
            let mut w = simple_world();
            for z in zones {
                w.add_friction_zone(*z);
            }
            w.spawn_ego(0.0, 30.0);
            while w.ego().state().v > 0.5 {
                w.step(VehicleCommand {
                    brake: 1.0,
                    ..VehicleCommand::default()
                });
            }
            w.ego().state().s
        };
        let dry = brake_distance(&[]);
        let icy = brake_distance(&[FrictionZone {
            start_s: 0.0,
            end_s: 1_000.0,
            scale: 0.25,
        }]);
        assert!(icy > dry * 2.0, "icy zone must stretch stopping distance");
        // A zone the ego never enters leaves the run untouched.
        let elsewhere = brake_distance(&[FrictionZone {
            start_s: 2_000.0,
            end_s: 2_500.0,
            scale: 0.25,
        }]);
        assert_eq!(elsewhere, dry);
    }

    #[test]
    fn surface_at_reflects_zones() {
        let mut w = simple_world();
        w.add_friction_zone(FrictionZone {
            start_s: 100.0,
            end_s: 200.0,
            scale: 0.5,
        });
        assert_eq!(w.surface_at(50.0), w.surface());
        assert!((w.surface_at(150.0).mu - w.surface().mu * 0.5).abs() < 1e-12);
        assert_eq!(w.friction_zones().len(), 1);
    }

    #[test]
    fn time_advances_with_steps() {
        let mut w = simple_world();
        w.spawn_ego(0.0, 10.0);
        for _ in 0..100 {
            w.step(VehicleCommand::coast());
        }
        assert!((w.time() - 1.0).abs() < 1e-9);
        assert_eq!(w.steps(), 100);
    }
}
