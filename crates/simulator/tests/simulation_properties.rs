//! Property-style integration tests of the physical substrate: energy-like
//! invariants, frenet/cartesian consistency, and multi-vehicle behaviour.

use adas_simulator::{
    units::{mph, SIM_DT},
    FrictionCondition, Npc, NpcBehavior, NpcPlan, NpcTrigger, RoadBuilder, SurfaceFriction,
    Vehicle, VehicleCommand, VehicleParams, World, WorldConfig,
};
use proptest::prelude::*;

#[test]
fn frenet_and_cartesian_agree_on_travelled_distance() {
    // Integrating a vehicle along a curvy road: the cartesian displacement
    // between consecutive samples must equal v·dt within integration error.
    let road = RoadBuilder::curvy_highway(4000.0).build();
    let mut car = Vehicle::new(VehicleParams::sedan(), 50.0, 0.0, 20.0);
    let mu = SurfaceFriction::default();
    let mut prev = road.frenet_to_cartesian(car.state().s, car.state().d);
    for _ in 0..2000 {
        let kappa = road.curvature_at(car.state().s);
        let steer = (car.params().wheelbase * kappa).atan();
        car.step(
            VehicleCommand {
                gas: 0.1,
                brake: 0.0,
                steer,
            },
            &road,
            mu,
            SIM_DT,
        );
        let now = road.frenet_to_cartesian(car.state().s, car.state().d);
        let step_dist = prev.distance(now);
        let expected = car.state().v * SIM_DT;
        assert!(
            (step_dist - expected).abs() < 0.05 + expected * 0.1,
            "step {step_dist} vs v·dt {expected}"
        );
        prev = now;
    }
}

#[test]
fn stopping_distance_scales_inverse_with_friction() {
    let road = RoadBuilder::straight_highway(3000.0).build();
    let stop_distance = |condition: FrictionCondition| -> f64 {
        let mut car = Vehicle::new(VehicleParams::sedan(), 0.0, 0.0, 25.0);
        let mu = SurfaceFriction::new(condition);
        let mut steps = 0;
        while car.state().v > 0.01 && steps < 30_000 {
            car.step(
                VehicleCommand {
                    brake: 1.0,
                    ..VehicleCommand::default()
                },
                &road,
                mu,
                SIM_DT,
            );
            steps += 1;
        }
        car.state().s
    };
    let dry = stop_distance(FrictionCondition::Default);
    let wet = stop_distance(FrictionCondition::Off50);
    let ice = stop_distance(FrictionCondition::Off75);
    assert!(dry < wet && wet < ice, "{dry} {wet} {ice}");
    // Roughly inverse-proportional (v²/2μg), modulo actuator lag.
    assert!(ice / dry > 2.5, "ice/dry = {}", ice / dry);
}

#[test]
fn two_npcs_interact_with_world_consistently() {
    // S6-style: the closer lead moves away; the world's lead observation
    // must switch to the farther one.
    let road = RoadBuilder::straight_highway(3000.0).build();
    let mut world = World::new(WorldConfig::default(), road);
    world.spawn_ego(0.0, mph(30.0));
    let far = world.add_npc(Npc::new(
        VehicleParams::sedan(),
        90.0,
        0.0,
        mph(30.0),
        NpcPlan::cruise(),
    ));
    let near = world.add_npc(Npc::new(
        VehicleParams::sedan(),
        50.0,
        0.0,
        mph(30.0),
        NpcPlan::cruise().then(
            NpcTrigger::AtTime(1.0),
            NpcBehavior::MoveLateral {
                target_d: 3.5,
                duration: 2.5,
            },
        ),
    ));
    // Initially the near NPC is the lead.
    world.step(VehicleCommand::coast());
    assert_eq!(world.lead_observation().unwrap().npc_index, near);
    // After the lane change completes, the far NPC is the lead.
    for _ in 0..700 {
        world.step(VehicleCommand::coast());
    }
    assert_eq!(world.lead_observation().unwrap().npc_index, far);
}

#[test]
fn world_time_limit_and_collision_are_exclusive_outcomes() {
    let road = RoadBuilder::straight_highway(3000.0).build();
    let mut world = World::new(WorldConfig::default(), road);
    world.spawn_ego(0.0, 10.0);
    world.add_npc(Npc::new(
        VehicleParams::sedan(),
        500.0,
        0.0,
        10.0,
        NpcPlan::cruise(),
    ));
    for _ in 0..2000 {
        world.step(VehicleCommand::coast());
    }
    assert!(world.collision().is_none());
    assert!(world.lane_departure().is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn no_spontaneous_lane_departure_under_centering(
        v0 in 8.0f64..30.0,
        seed_gas in 0.0f64..0.4,
    ) {
        // A vehicle steering exactly the road's curvature never leaves the
        // lane regardless of speed and throttle.
        let road = RoadBuilder::curvy_highway(4000.0).build();
        let mut car = Vehicle::new(VehicleParams::sedan(), 10.0, 0.0, v0);
        let mu = SurfaceFriction::default();
        for _ in 0..3000 {
            let kappa = road.curvature_at(car.state().s);
            let steer = (car.params().wheelbase * kappa).atan();
            car.step(
                VehicleCommand { gas: seed_gas, brake: 0.0, steer },
                &road,
                mu,
                SIM_DT,
            );
            prop_assert!(car.state().d.abs() < 1.6, "d = {}", car.state().d);
        }
    }

    #[test]
    fn braking_never_increases_speed(v0 in 1.0f64..35.0, brake in 0.1f64..1.0) {
        let road = RoadBuilder::straight_highway(2000.0).build();
        let mut car = Vehicle::new(VehicleParams::sedan(), 0.0, 0.0, v0);
        let mu = SurfaceFriction::default();
        let mut prev_v = v0;
        for _ in 0..500 {
            car.step(
                VehicleCommand { gas: 0.0, brake, steer: 0.0 },
                &road,
                mu,
                SIM_DT,
            );
            prop_assert!(car.state().v <= prev_v + 1e-9);
            prev_v = car.state().v;
        }
    }

    #[test]
    fn lead_observation_distance_is_bumper_gap(gap in 6.0f64..100.0) {
        let road = RoadBuilder::straight_highway(3000.0).build();
        let mut world = World::new(WorldConfig::default(), road);
        world.spawn_ego(0.0, 20.0);
        world.add_npc(Npc::new(
            VehicleParams::sedan(),
            gap,
            0.0,
            20.0,
            NpcPlan::cruise(),
        ));
        let obs = world.lead_observation().expect("lead in range");
        prop_assert!((obs.distance - (gap - 4.9)).abs() < 1e-9);
    }
}
