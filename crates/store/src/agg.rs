//! Streaming group-by aggregation over cell rows.
//!
//! The group key space is the small discrete campaign grid (≤ 6 scenarios
//! × 2 positions × 4 faults × a handful of intervention rows ×
//! 3 mitigations × 2 scheduler flags), so a fold keeps one
//! [`Accumulator`] per *observed* group — memory is bounded by the grid,
//! never by the row count. Rows stream in one verified block at a time
//! via [`crate::Store::scan_cells`]; nothing is materialised.

use crate::record::{CellRow, ANY};
use crate::store::{SegmentReport, Store, StoreError};
use std::collections::BTreeMap;

/// Marker in a [`GroupKey`] slot for an axis the query collapsed over.
/// Distinct from [`ANY`] (0xFF), which is a *stored* value meaning "the
/// writer aggregated over this axis".
const COLLAPSED: u8 = 0xFE;

/// Which of the six discrete axes a query groups by.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GroupBy {
    /// Group by scenario index.
    pub scenario: bool,
    /// Group by spawn position.
    pub position: bool,
    /// Group by fault code.
    pub fault: bool,
    /// Group by Table VI intervention row.
    pub iv_row: bool,
    /// Group by mitigation strategy.
    pub mitigation: bool,
    /// Group by scheduler flag.
    pub sched: bool,
}

impl GroupBy {
    /// Axis names accepted by [`GroupBy::parse`], in key order.
    pub const AXES: [&'static str; 6] =
        ["scenario", "position", "fault", "iv", "mitigation", "sched"];

    /// Parses a comma-separated axis list (e.g. `fault,iv`). Unknown
    /// names are errors; an empty string groups everything into one row.
    pub fn parse(spec: &str) -> Result<Self, StoreError> {
        let mut by = GroupBy::default();
        for axis in spec.split(',').map(str::trim).filter(|a| !a.is_empty()) {
            match axis {
                "scenario" => by.scenario = true,
                "position" => by.position = true,
                "fault" => by.fault = true,
                "iv" | "iv_row" | "intervention" => by.iv_row = true,
                "mitigation" => by.mitigation = true,
                "sched" | "scheduler" => by.sched = true,
                other => {
                    return Err(StoreError::Format(format!(
                        "unknown group axis `{other}` (expected one of {})",
                        Self::AXES.join(", ")
                    )))
                }
            }
        }
        Ok(by)
    }

    /// Projects a row onto this grouping.
    #[must_use]
    pub fn key(&self, row: &CellRow) -> GroupKey {
        let pick = |on: bool, v: u8| if on { v } else { COLLAPSED };
        GroupKey([
            pick(self.scenario, row.scenario),
            pick(self.position, row.position),
            pick(self.fault, row.fault),
            pick(self.iv_row, row.iv_row),
            pick(self.mitigation, row.mitigation),
            pick(self.sched, row.sched),
        ])
    }

    /// CSV header for [`render`] output: the selected axes then the
    /// derived measures.
    #[must_use]
    pub fn header(&self) -> String {
        let mut cols = Vec::new();
        for (on, name) in self.flags().into_iter().zip(Self::AXES) {
            if on {
                cols.push(name.to_owned());
            }
        }
        cols.extend(
            [
                "runs",
                "a1_pct",
                "a2_pct",
                "prevented_pct",
                "hazard_pct",
                "aeb_rate",
                "driver_brake_rate",
                "driver_steer_rate",
                "ml_rate",
                "aeb_time",
                "driver_brake_time",
                "driver_steer_time",
            ]
            .map(str::to_owned),
        );
        cols.join(",")
    }

    fn flags(&self) -> [bool; 6] {
        [
            self.scenario,
            self.position,
            self.fault,
            self.iv_row,
            self.mitigation,
            self.sched,
        ]
    }
}

/// A projected group key: one slot per axis, [`COLLAPSED`] where the
/// query doesn't group. Ordered, so aggregate output is deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct GroupKey(pub [u8; 6]);

impl GroupKey {
    /// The selected-axis values in key order, rendered for CSV output
    /// (stored [`ANY`] prints as `any`).
    #[must_use]
    pub fn cells(&self) -> Vec<String> {
        self.0
            .iter()
            .filter(|&&v| v != COLLAPSED)
            .map(|&v| {
                if v == ANY {
                    "any".to_owned()
                } else {
                    v.to_string()
                }
            })
            .collect()
    }
}

/// Exact running sums for one group. All integer counts, so merging
/// accumulators (or folding rows in any order) yields identical derived
/// percentages.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    /// Total runs.
    pub runs: u64,
    /// Forward collisions.
    pub a1: u64,
    /// Lane violations.
    pub a2: u64,
    /// Accident-free runs.
    pub prevented: u64,
    /// Hazard-flagged runs.
    pub hazard: u64,
    /// AEB-triggered runs.
    pub aeb_n: u64,
    /// Driver-brake-triggered runs.
    pub driver_brake_n: u64,
    /// Driver-steer-triggered runs.
    pub driver_steer_n: u64,
    /// ML-recovery runs.
    pub ml_n: u64,
    /// Sum of AEB mitigation times.
    pub aeb_time_sum: f64,
    /// Runs contributing to [`Accumulator::aeb_time_sum`].
    pub aeb_time_n: u64,
    /// Sum of driver-brake mitigation times.
    pub driver_brake_time_sum: f64,
    /// Runs contributing to [`Accumulator::driver_brake_time_sum`].
    pub driver_brake_time_n: u64,
    /// Sum of driver-steer mitigation times.
    pub driver_steer_time_sum: f64,
    /// Runs contributing to [`Accumulator::driver_steer_time_sum`].
    pub driver_steer_time_n: u64,
}

impl Accumulator {
    /// Folds one row in.
    pub fn fold(&mut self, row: &CellRow) {
        self.runs += u64::from(row.runs);
        self.a1 += u64::from(row.a1);
        self.a2 += u64::from(row.a2);
        self.prevented += u64::from(row.prevented);
        self.hazard += u64::from(row.hazard);
        self.aeb_n += u64::from(row.aeb_n);
        self.driver_brake_n += u64::from(row.driver_brake_n);
        self.driver_steer_n += u64::from(row.driver_steer_n);
        self.ml_n += u64::from(row.ml_n);
        self.aeb_time_sum += row.aeb_time_sum;
        self.aeb_time_n += u64::from(row.aeb_time_n);
        self.driver_brake_time_sum += row.driver_brake_time_sum;
        self.driver_brake_time_n += u64::from(row.driver_brake_time_n);
        self.driver_steer_time_sum += row.driver_steer_time_sum;
        self.driver_steer_time_n += u64::from(row.driver_steer_time_n);
    }

    /// Merges another accumulator in (shard/segment combination).
    pub fn merge(&mut self, other: &Accumulator) {
        self.runs += other.runs;
        self.a1 += other.a1;
        self.a2 += other.a2;
        self.prevented += other.prevented;
        self.hazard += other.hazard;
        self.aeb_n += other.aeb_n;
        self.driver_brake_n += other.driver_brake_n;
        self.driver_steer_n += other.driver_steer_n;
        self.ml_n += other.ml_n;
        self.aeb_time_sum += other.aeb_time_sum;
        self.aeb_time_n += other.aeb_time_n;
        self.driver_brake_time_sum += other.driver_brake_time_sum;
        self.driver_brake_time_n += other.driver_brake_time_n;
        self.driver_steer_time_sum += other.driver_steer_time_sum;
        self.driver_steer_time_n += other.driver_steer_time_n;
    }

    fn pct(count: u64, runs: u64) -> f64 {
        if runs == 0 {
            0.0
        } else {
            100.0 * count as f64 / runs as f64
        }
    }

    fn mean(sum: f64, n: u64) -> Option<f64> {
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Forward-collision percentage (Table VI A1 column).
    #[must_use]
    pub fn a1_pct(&self) -> f64 {
        Self::pct(self.a1, self.runs)
    }

    /// Lane-violation percentage (Table VI A2 column).
    #[must_use]
    pub fn a2_pct(&self) -> f64 {
        Self::pct(self.a2, self.runs)
    }

    /// Accident-prevented percentage.
    #[must_use]
    pub fn prevented_pct(&self) -> f64 {
        Self::pct(self.prevented, self.runs)
    }

    /// Hazard-flag percentage.
    #[must_use]
    pub fn hazard_pct(&self) -> f64 {
        Self::pct(self.hazard, self.runs)
    }

    /// One CSV measure tail: runs then the derived percentages and mean
    /// times (empty cell when a mean has no contributors).
    #[must_use]
    pub fn render_measures(&self) -> String {
        let m = |sum, n| {
            Self::mean(sum, n).map_or_else(String::new, |v| format!("{v:.3}"))
        };
        format!(
            "{},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{:.2},{},{},{}",
            self.runs,
            self.a1_pct(),
            self.a2_pct(),
            self.prevented_pct(),
            self.hazard_pct(),
            Self::pct(self.aeb_n, self.runs),
            Self::pct(self.driver_brake_n, self.runs),
            Self::pct(self.driver_steer_n, self.runs),
            Self::pct(self.ml_n, self.runs),
            m(self.aeb_time_sum, self.aeb_time_n),
            m(self.driver_brake_time_sum, self.driver_brake_time_n),
            m(self.driver_steer_time_sum, self.driver_steer_time_n),
        )
    }
}

/// Streams every intact cell row of `store` into per-group accumulators.
/// Returns the group table plus the per-segment read reports (so callers
/// can surface recovery events alongside the aggregate).
pub fn aggregate(
    store: &Store,
    by: &GroupBy,
) -> Result<(BTreeMap<GroupKey, Accumulator>, Vec<SegmentReport>), StoreError> {
    let mut groups: BTreeMap<GroupKey, Accumulator> = BTreeMap::new();
    let reports = store.scan_cells(|row| {
        groups.entry(by.key(row)).or_default().fold(row);
    })?;
    Ok((groups, reports))
}

/// Renders a group table as CSV, one line per group in key order.
#[must_use]
pub fn render(by: &GroupBy, groups: &BTreeMap<GroupKey, Accumulator>) -> String {
    let mut out = String::new();
    out.push_str(&by.header());
    out.push('\n');
    for (key, acc) in groups {
        let mut cols = key.cells();
        cols.push(acc.render_measures());
        out.push_str(&cols.join(","));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(fault: u8, iv: u8, a1: u32) -> CellRow {
        CellRow {
            scenario: 2,
            position: 0,
            fault,
            iv_row: iv,
            mitigation: 0,
            sched: 0,
            seed: 1,
            runs: 100,
            a1,
            a2: 5,
            prevented: 100 - a1 - 5,
            hazard: 90,
            aeb_n: 40,
            driver_brake_n: 30,
            driver_steer_n: 10,
            ml_n: 0,
            aeb_time_sum: 50.0,
            aeb_time_n: 40,
            driver_brake_time_sum: 60.0,
            driver_brake_time_n: 30,
            driver_steer_time_sum: 0.0,
            driver_steer_time_n: 0,
        }
    }

    #[test]
    fn grouping_collapses_unselected_axes() {
        let by = GroupBy::parse("fault").unwrap();
        let mut groups: BTreeMap<GroupKey, Accumulator> = BTreeMap::new();
        for r in [row(1, 0, 10), row(1, 3, 20), row(2, 0, 30)] {
            groups.entry(by.key(&r)).or_default().fold(&r);
        }
        assert_eq!(groups.len(), 2);
        let fault1 = by.key(&row(1, 0, 0));
        assert_eq!(groups[&fault1].runs, 200);
        assert_eq!(groups[&fault1].a1, 30);
        assert!((groups[&fault1].a1_pct() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn fold_order_does_not_change_derived_stats() {
        let by = GroupBy::default();
        let rows = [row(0, 0, 1), row(1, 1, 2), row(2, 2, 3), row(3, 3, 4)];
        let mut forward = Accumulator::default();
        for r in &rows {
            forward.fold(r);
        }
        let mut backward = Accumulator::default();
        for r in rows.iter().rev() {
            backward.fold(r);
        }
        assert_eq!(forward, backward);
        let _ = by;
    }

    #[test]
    fn merge_equals_fold_of_concatenation() {
        let rows: Vec<_> = (0..10).map(|i| row(i % 4, i % 8, i as u32)).collect();
        let mut whole = Accumulator::default();
        for r in &rows {
            whole.fold(r);
        }
        let (left, right) = rows.split_at(4);
        let mut a = Accumulator::default();
        let mut b = Accumulator::default();
        for r in left {
            a.fold(r);
        }
        for r in right {
            b.fold(r);
        }
        a.merge(&b);
        assert_eq!(a, whole);
    }

    #[test]
    fn parse_rejects_unknown_axis() {
        assert!(GroupBy::parse("fault,bogus").is_err());
        assert!(GroupBy::parse("").unwrap() == GroupBy::default());
    }

    #[test]
    fn render_emits_one_line_per_group() {
        let by = GroupBy::parse("fault,iv").unwrap();
        let mut groups: BTreeMap<GroupKey, Accumulator> = BTreeMap::new();
        for r in [row(1, 0, 10), row(2, 1, 20)] {
            groups.entry(by.key(&r)).or_default().fold(&r);
        }
        let text = render(&by, &groups);
        let lines: Vec<_> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("fault,iv,runs,"));
        assert!(lines[1].starts_with("1,0,100,10.00"));
    }
}
