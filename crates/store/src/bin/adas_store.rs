//! `adas-store` — CLI over a columnar results store directory.
//!
//! ```text
//! adas-store synth   --dir results/store --cells 1000000 --seed 2025
//! adas-store ingest  --dir results/store --csv results/table_vi.csv
//! adas-store query   --dir results/store --by fault,iv
//! adas-store verify  --dir results/store
//! adas-store compact --dir results/store
//! adas-store findings --dir results/store
//! ```
//!
//! The directory defaults to `ADAS_STORE_DIR`, then `results/store`.

use adas_store::record::ANY;
use adas_store::{agg, synth, CellRow, GroupBy, RecordKind, Store, StoreError};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: adas-store <synth|ingest|query|verify|compact|findings> [options]\n\
         \n\
         common:\n\
           --dir <path>        store directory (default $ADAS_STORE_DIR or results/store)\n\
         synth:\n\
           --cells <n>         synthetic cell rows to append (default 0)\n\
           --findings <n>      synthetic finding rows to append (default 0)\n\
           --seed <u64>        generator seed (default 2025)\n\
         ingest:\n\
           --csv <path>        table_vi-style CSV to ingest as cell rows\n\
           --seed <u64>        campaign seed recorded on the rows (default 2025)\n\
         query:\n\
           --by <axes>         comma list of scenario,position,fault,iv,mitigation,sched\n\
           --out <path>        write CSV there instead of stdout"
    );
    ExitCode::from(2)
}

struct Opts {
    dir: PathBuf,
    by: String,
    csv: Option<PathBuf>,
    out: Option<PathBuf>,
    cells: u64,
    findings: u64,
    seed: u64,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        dir: adas_store::dir_from_env().unwrap_or_else(|| PathBuf::from("results/store")),
        by: String::new(),
        csv: None,
        out: None,
        cells: 0,
        findings: 0,
        seed: 2025,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--dir" => opts.dir = PathBuf::from(value("--dir")?),
            "--by" => opts.by = value("--by")?,
            "--csv" => opts.csv = Some(PathBuf::from(value("--csv")?)),
            "--out" => opts.out = Some(PathBuf::from(value("--out")?)),
            "--cells" => {
                opts.cells = value("--cells")?.parse().map_err(|e| format!("--cells: {e}"))?;
            }
            "--findings" => {
                opts.findings =
                    value("--findings")?.parse().map_err(|e| format!("--findings: {e}"))?;
            }
            "--seed" => {
                opts.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(verb) = args.first() else {
        return usage();
    };
    let opts = match parse_opts(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("adas-store: {e}");
            return usage();
        }
    };
    let result = match verb.as_str() {
        "synth" => cmd_synth(&opts),
        "ingest" => cmd_ingest(&opts),
        "query" => cmd_query(&opts),
        "verify" => cmd_verify(&opts),
        "compact" => cmd_compact(&opts),
        "findings" => cmd_findings(&opts),
        _ => return usage(),
    };
    match result {
        Ok(code) => code,
        Err(e) => {
            eprintln!("adas-store: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_synth(opts: &Opts) -> Result<ExitCode, StoreError> {
    let store = Store::open(&opts.dir)?;
    // Append in bounded batches so a million-row synth never holds the
    // whole load in memory either.
    const BATCH: u64 = 100_000;
    let mut written = 0u64;
    let mut batch_seed = opts.seed;
    if opts.cells > 0 {
        let mut w = store.create_segment(RecordKind::Cell)?;
        while written < opts.cells {
            let n = BATCH.min(opts.cells - written);
            w.append_bytes(&adas_store::record::encode_cells(&synth::cells(batch_seed, n)))?;
            written += n;
            batch_seed = batch_seed.wrapping_add(1);
        }
        let total = w.finish()?;
        println!("synth: wrote {total} cell rows");
    }
    if opts.findings > 0 {
        let mut w = store.create_segment(RecordKind::Finding)?;
        let mut left = opts.findings;
        let mut fseed = opts.seed;
        while left > 0 {
            let n = BATCH.min(left);
            w.append_bytes(&adas_store::record::encode_findings(&synth::findings(fseed, n)))?;
            left -= n;
            fseed = fseed.wrapping_add(1);
        }
        let total = w.finish()?;
        println!("synth: wrote {total} finding rows");
    }
    Ok(ExitCode::SUCCESS)
}

/// Ingests a `results/table_vi.csv` file (header
/// `fault,config,runs,a1_pct,a2_pct,prevented_pct,aeb_mt,...`): each
/// line becomes one [`CellRow`] with exact counts recovered via
/// [`CellRow::from_stats`]. Mitigation-time cells use `-` for "never
/// triggered", matching the bench writer.
fn cmd_ingest(opts: &Opts) -> Result<ExitCode, StoreError> {
    let csv = opts
        .csv
        .as_ref()
        .ok_or_else(|| StoreError::Format("ingest needs --csv <path>".into()))?;
    let text = std::fs::read_to_string(csv).map_err(|e| StoreError::io(csv, &e))?;
    let mut lines = text.lines();
    let header = lines
        .next()
        .ok_or_else(|| StoreError::Format("empty CSV".into()))?;
    let cols: Vec<&str> = header.split(',').map(str::trim).collect();
    let col = |name: &str| {
        cols.iter()
            .position(|c| *c == name)
            .ok_or_else(|| StoreError::Format(format!("CSV is missing a `{name}` column")))
    };
    let fault_c = col("fault")?;
    let config_c = col("config")?;
    let runs_c = col("runs")?;
    let a1_c = col("a1_pct")?;
    let a2_c = col("a2_pct")?;
    let prevented_c = col("prevented_pct")?;
    let aeb_mt_c = col("aeb_mt")?;
    let db_mt_c = col("driver_brake_mt")?;
    let ds_mt_c = col("driver_steer_mt")?;
    let aeb_tr_c = col("aeb_trigger_pct")?;
    let db_tr_c = col("driver_brake_trigger_pct")?;
    let ds_tr_c = col("driver_steer_trigger_pct")?;
    let ml_tr_c = col("ml_trigger_pct")?;

    let iv_labels: Vec<String> = adas_core::InterventionConfig::table_vi_rows()
        .iter()
        .map(adas_core::InterventionConfig::label)
        .collect();
    let fault_code = |label: &str| match label {
        "None" => Some(0u8),
        "Relative Distance" => Some(1),
        "Desired Curvature" => Some(2),
        "Mixed" => Some(3),
        _ => None,
    };

    let mut rows = Vec::new();
    let mut skipped = 0usize;
    for line in lines.filter(|l| !l.trim().is_empty()) {
        let fields: Vec<&str> = line.split(',').map(str::trim).collect();
        let get = |c: usize| fields.get(c).copied().unwrap_or("");
        let pct = |c: usize| get(c).parse::<f64>().unwrap_or(0.0);
        let opt_time = |c: usize| get(c).parse::<f64>().ok();
        let iv_row = iv_labels.iter().position(|l| l == get(config_c));
        let fault = fault_code(get(fault_c));
        let (Some(iv_row), Some(fault)) = (iv_row, fault) else {
            skipped += 1;
            continue;
        };
        let stats = adas_core::CellStats {
            runs: get(runs_c).parse().unwrap_or(0),
            a1_pct: pct(a1_c),
            a2_pct: pct(a2_c),
            prevented_pct: pct(prevented_c),
            hazard_pct: 0.0,
            aeb_mitigation_time: opt_time(aeb_mt_c),
            driver_brake_mitigation_time: opt_time(db_mt_c),
            driver_steer_mitigation_time: opt_time(ds_mt_c),
            aeb_trigger_rate: pct(aeb_tr_c),
            driver_brake_trigger_rate: pct(db_tr_c),
            driver_steer_trigger_rate: pct(ds_tr_c),
            ml_trigger_rate: pct(ml_tr_c),
        };
        rows.push(CellRow::from_stats(
            (ANY, ANY, fault, iv_row as u8, 0, 0),
            opts.seed,
            &stats,
        ));
    }
    if rows.is_empty() {
        return Err(StoreError::Format(format!(
            "no ingestable rows in {} ({skipped} skipped)",
            csv.display()
        )));
    }
    let store = Store::open(&opts.dir)?;
    let path = store.append_cells(&rows)?;
    println!(
        "ingest: {} rows from {} -> {} ({skipped} skipped)",
        rows.len(),
        csv.display(),
        path.display()
    );
    Ok(ExitCode::SUCCESS)
}

fn cmd_query(opts: &Opts) -> Result<ExitCode, StoreError> {
    let store = Store::open(&opts.dir)?;
    let by = GroupBy::parse(&opts.by)?;
    let (groups, reports) = agg::aggregate(&store, &by)?;
    let text = agg::render(&by, &groups);
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| StoreError::io(path, &e))?;
            println!("query: {} groups -> {}", groups.len(), path.display());
        }
        None => print!("{text}"),
    }
    let damaged: u64 = reports.iter().map(|r| r.corrupt_blocks).sum();
    let truncated = reports.iter().filter(|r| r.truncated).count();
    if damaged > 0 || truncated > 0 {
        eprintln!(
            "query: note: recovered past {damaged} damaged block(s), {truncated} truncated segment(s)"
        );
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_verify(opts: &Opts) -> Result<ExitCode, StoreError> {
    let store = Store::open(&opts.dir)?;
    let report = store.verify()?;
    for seg in &report.segments {
        println!(
            "{}: {} blocks, {} records{}{}",
            seg.path.display(),
            seg.blocks,
            seg.records,
            if seg.corrupt_blocks > 0 {
                format!(", {} corrupt block(s)", seg.corrupt_blocks)
            } else {
                String::new()
            },
            if seg.truncated { ", truncated tail" } else { "" },
        );
    }
    println!(
        "verify: {} segment(s), {} intact records, {}",
        report.segments.len(),
        report.records(),
        if report.clean() { "clean" } else { "DAMAGED" }
    );
    Ok(if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn cmd_compact(opts: &Opts) -> Result<ExitCode, StoreError> {
    let store = Store::open(&opts.dir)?;
    for kind in [RecordKind::Cell, RecordKind::Finding] {
        let n = store.compact(kind)?;
        println!("compact: {} -> {n} records", kind.prefix());
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_findings(opts: &Opts) -> Result<ExitCode, StoreError> {
    let store = Store::open(&opts.dir)?;
    let mut by_oracle: BTreeMap<u8, u64> = BTreeMap::new();
    let mut total = 0u64;
    store.scan_findings(|f| {
        *by_oracle.entry(f.oracle).or_default() += 1;
        total += 1;
    })?;
    println!("oracle,findings");
    for (oracle, n) in &by_oracle {
        println!("{oracle},{n}");
    }
    println!("total,{total}");
    Ok(ExitCode::SUCCESS)
}
