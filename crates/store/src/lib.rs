//! `adas-store` — the fleet's append-only columnar results store.
//!
//! Every earlier harness answered "how did intervention row X fare under
//! fault Y?" by rescanning `results/*.csv`. That stops working at fleet
//! scale (ROADMAP item 3: millions of runs streamed off many workers), so
//! this crate gives campaign runner, serve daemon, and fabric coordinator
//! one durable write path and one bounded-memory query path:
//!
//! * [`record`] — the two fixed-width row types: [`record::CellRow`]
//!   (per-cell outcome **counts**, exactly mergeable across shards) and
//!   [`record::FindingRow`] (one deduped fuzz finding, self-contained
//!   shrunk case included);
//! * [`segment`] — the on-disk unit: a versioned header followed by
//!   FNV-checksummed blocks of records. Readers never trust a byte that
//!   fails its checksum: a truncated tail (writer crashed mid-block) or a
//!   corrupted block is skipped by resynchronising on the next block
//!   magic, so every intact record is still yielded and nothing panics;
//! * [`store`] — a directory of segments with `append`/`iter`/`verify`/
//!   `compact`;
//! * [`agg`] — streaming group-by aggregation: rows fold into a
//!   fixed-size accumulator table (the group key space is the small
//!   discrete grid) one block at a time, so a Table VI-style aggregate
//!   over millions of records needs memory proportional to one block
//!   plus the group count, never to the row count;
//! * [`synth`] — a deterministic synthetic-row generator used by the
//!   scale tests and the `adas-store synth` CLI verb.
//!
//! The `adas-store` binary exposes `ingest | query | compact | verify |
//! synth` over a store directory (`ADAS_STORE_DIR`, default
//! `results/store`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod record;
pub mod segment;
pub mod store;
pub mod synth;

pub use agg::{Accumulator, GroupBy, GroupKey};
pub use record::{CellRow, FindingRow, RecordKind};
pub use segment::{SegmentReader, SegmentWriter, REC_PER_BLOCK};
pub use store::{SegmentReport, Store, StoreError, VerifyReport};

/// Environment variable naming the store directory; unset disables the
/// write-through path in the harnesses.
pub const STORE_DIR_ENV: &str = "ADAS_STORE_DIR";

/// Store directory from `ADAS_STORE_DIR`, or `None` when the variable is
/// unset/empty (the store is strictly opt-in for the CLI harnesses).
#[must_use]
pub fn dir_from_env() -> Option<std::path::PathBuf> {
    match std::env::var(STORE_DIR_ENV) {
        Ok(v) if !v.trim().is_empty() => Some(std::path::PathBuf::from(v)),
        _ => None,
    }
}
