//! The fixed-width row types.
//!
//! Rows carry **counts**, not percentages: counts merge exactly across
//! segments and shards (addition is associative; re-derived percentages
//! are bit-identical no matter how the rows were batched), and the
//! fixed-width encoding is what lets the segment reader validate a block
//! structurally (`payload_len == count × width`) before trusting any
//! field.

use adas_core::job::{ByteReader, ByteWriter};

/// Sentinel for "aggregated over this axis" in [`CellRow::scenario`] /
/// [`CellRow::position`] (the CLI harnesses aggregate per cell, the
/// per-run paths record the actual coordinate).
pub const ANY: u8 = 0xFF;

/// What a segment holds. The kind byte lives in the segment header, so a
/// file never mixes row widths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// [`CellRow`] — campaign cell outcome counts.
    Cell,
    /// [`FindingRow`] — one deduped fuzz finding.
    Finding,
}

impl RecordKind {
    /// Stable on-disk code.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            RecordKind::Cell => 1,
            RecordKind::Finding => 2,
        }
    }

    /// Parses [`RecordKind::code`].
    #[must_use]
    pub fn from_code(code: u8) -> Option<Self> {
        match code {
            1 => Some(RecordKind::Cell),
            2 => Some(RecordKind::Finding),
            _ => None,
        }
    }

    /// Fixed record width in bytes for this kind.
    #[must_use]
    pub fn width(self) -> usize {
        match self {
            RecordKind::Cell => CellRow::WIDTH,
            RecordKind::Finding => FindingRow::WIDTH,
        }
    }

    /// Segment file-name prefix (`cells-00000001.seg`).
    #[must_use]
    pub fn prefix(self) -> &'static str {
        match self {
            RecordKind::Cell => "cells",
            RecordKind::Finding => "findings",
        }
    }
}

/// One campaign cell's outcome counts: the discrete grid coordinates plus
/// everything [`adas_core::CellStats`] needs, as exact integers (and time
/// sums, whose addition is the mean's numerator).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRow {
    /// Scenario index 0–5, or [`ANY`] when aggregated over scenarios.
    pub scenario: u8,
    /// Spawn position 0/1, or [`ANY`].
    pub position: u8,
    /// Fault: 0 none, 1 relative-distance, 2 curvature, 3 mixed.
    pub fault: u8,
    /// Table VI intervention-row index.
    pub iv_row: u8,
    /// Mitigation strategy for ML rows: 0 cusum, 1 ensemble, 2 maskcheck.
    pub mitigation: u8,
    /// 1 when the attack ran under a context scheduler, 0 immediate.
    pub sched: u8,
    /// Campaign seed the runs executed under.
    pub seed: u64,
    /// Total runs folded into this row.
    pub runs: u32,
    /// Forward collisions (A1).
    pub a1: u32,
    /// Lane violations (A2).
    pub a2: u32,
    /// Accident-free runs.
    pub prevented: u32,
    /// Runs with any hazard flag.
    pub hazard: u32,
    /// Runs in which AEB braked.
    pub aeb_n: u32,
    /// Runs in which the driver's brake channel triggered.
    pub driver_brake_n: u32,
    /// Runs in which the driver's steer channel triggered.
    pub driver_steer_n: u32,
    /// Runs in which ML recovery engaged.
    pub ml_n: u32,
    /// Sum of fault-start → AEB-braking times, seconds.
    pub aeb_time_sum: f64,
    /// Runs contributing to [`CellRow::aeb_time_sum`].
    pub aeb_time_n: u32,
    /// Sum of fault-start → driver-brake times, seconds.
    pub driver_brake_time_sum: f64,
    /// Runs contributing to [`CellRow::driver_brake_time_sum`].
    pub driver_brake_time_n: u32,
    /// Sum of fault-start → driver-steer times, seconds.
    pub driver_steer_time_sum: f64,
    /// Runs contributing to [`CellRow::driver_steer_time_sum`].
    pub driver_steer_time_n: u32,
}

impl CellRow {
    /// Encoded width: 6 × u8 + u64 + 9 × u32 + 3 × (f64 + u32).
    pub const WIDTH: usize = 6 + 8 + 9 * 4 + 3 * 12;

    /// Encodes into exactly [`CellRow::WIDTH`] bytes.
    pub fn encode(&self, out: &mut ByteWriter) {
        for v in [
            self.scenario,
            self.position,
            self.fault,
            self.iv_row,
            self.mitigation,
            self.sched,
        ] {
            out.u8(v);
        }
        out.u64(self.seed);
        for v in [
            self.runs,
            self.a1,
            self.a2,
            self.prevented,
            self.hazard,
            self.aeb_n,
            self.driver_brake_n,
            self.driver_steer_n,
            self.ml_n,
        ] {
            out.u32(v);
        }
        for (sum, n) in [
            (self.aeb_time_sum, self.aeb_time_n),
            (self.driver_brake_time_sum, self.driver_brake_time_n),
            (self.driver_steer_time_sum, self.driver_steer_time_n),
        ] {
            out.f64(sum);
            out.u32(n);
        }
    }

    /// Decodes one row; `None` on short input.
    #[must_use]
    pub fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let mut u8s = [0u8; 6];
        for slot in &mut u8s {
            *slot = r.u8()?;
        }
        let seed = r.u64()?;
        let mut u32s = [0u32; 9];
        for slot in &mut u32s {
            *slot = r.u32()?;
        }
        let mut times = [(0.0f64, 0u32); 3];
        for slot in &mut times {
            *slot = (r.f64()?, r.u32()?);
        }
        Some(Self {
            scenario: u8s[0],
            position: u8s[1],
            fault: u8s[2],
            iv_row: u8s[3],
            mitigation: u8s[4],
            sched: u8s[5],
            seed,
            runs: u32s[0],
            a1: u32s[1],
            a2: u32s[2],
            prevented: u32s[3],
            hazard: u32s[4],
            aeb_n: u32s[5],
            driver_brake_n: u32s[6],
            driver_steer_n: u32s[7],
            ml_n: u32s[8],
            aeb_time_sum: times[0].0,
            aeb_time_n: times[0].1,
            driver_brake_time_sum: times[1].0,
            driver_brake_time_n: times[1].1,
            driver_steer_time_sum: times[2].0,
            driver_steer_time_n: times[2].1,
        })
    }

    /// Converts an aggregate [`adas_core::CellStats`] back into exact
    /// counts. Lossless because every `CellStats` percentage is
    /// `100 · count / runs` of integer counts, so rounding the product
    /// recovers the integer exactly; the stored time sums are
    /// `mean × n`.
    #[must_use]
    pub fn from_stats(
        coords: (u8, u8, u8, u8, u8, u8),
        seed: u64,
        s: &adas_core::CellStats,
    ) -> Self {
        let runs = u32::try_from(s.runs).unwrap_or(u32::MAX);
        let count = |pct: f64| {
            let n = (pct * f64::from(runs) / 100.0).round();
            if n.is_finite() && n >= 0.0 {
                n as u32
            } else {
                0
            }
        };
        let a1 = count(s.a1_pct);
        let a2 = count(s.a2_pct);
        let (aeb_n, driver_brake_n, driver_steer_n, ml_n) = (
            count(s.aeb_trigger_rate),
            count(s.driver_brake_trigger_rate),
            count(s.driver_steer_trigger_rate),
            count(s.ml_trigger_rate),
        );
        // Mitigation-time means are reported over the triggered runs.
        let sum_of = |mean: Option<f64>, n: u32| mean.map_or(0.0, |m| m * f64::from(n));
        Self {
            scenario: coords.0,
            position: coords.1,
            fault: coords.2,
            iv_row: coords.3,
            mitigation: coords.4,
            sched: coords.5,
            seed,
            runs,
            a1,
            a2,
            prevented: count(s.prevented_pct),
            hazard: count(s.hazard_pct),
            aeb_n,
            driver_brake_n,
            driver_steer_n,
            ml_n,
            aeb_time_sum: sum_of(s.aeb_mitigation_time, aeb_n),
            aeb_time_n: if s.aeb_mitigation_time.is_some() { aeb_n } else { 0 },
            driver_brake_time_sum: sum_of(s.driver_brake_mitigation_time, driver_brake_n),
            driver_brake_time_n: if s.driver_brake_mitigation_time.is_some() {
                driver_brake_n
            } else {
                0
            },
            driver_steer_time_sum: sum_of(s.driver_steer_mitigation_time, driver_steer_n),
            driver_steer_time_n: if s.driver_steer_mitigation_time.is_some() {
                driver_steer_n
            } else {
                0
            },
        }
    }
}

/// One deduped fuzz finding: the oracle, the behavioural signature it was
/// deduped under, and the full shrunk case — self-contained, so the store
/// alone can answer "which parameters break which property where".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FindingRow {
    /// Oracle family code ([`adas_fuzz` `OracleKind::code`]).
    pub oracle: u8,
    /// Scenario index 0–5.
    pub scenario: u8,
    /// Spawn position 0/1.
    pub position: u8,
    /// Fault code (as [`CellRow::fault`]).
    pub fault: u8,
    /// Table VI intervention-row index.
    pub iv_row: u8,
    /// Scheduler TTC bucket of the shrunk case (0 = immediate).
    pub sched: u8,
    /// Fuzz session seed that produced the finding.
    pub session_seed: u64,
    /// Behavioural signature (the fleet dedup key, with the oracle).
    pub signature: u64,
    /// Shrunk-case fingerprint (= repro file stem suffix).
    pub fingerprint: u64,
    /// Repetition index of the shrunk case.
    pub repetition: u32,
    /// Shrunk continuous parameters, in `FuzzCase` field order.
    pub params: [f64; 8],
}

impl FindingRow {
    /// Encoded width: 6 × u8 + 3 × u64 + u32 + 8 × f64.
    pub const WIDTH: usize = 6 + 3 * 8 + 4 + 8 * 8;

    /// Encodes into exactly [`FindingRow::WIDTH`] bytes.
    pub fn encode(&self, out: &mut ByteWriter) {
        for v in [
            self.oracle,
            self.scenario,
            self.position,
            self.fault,
            self.iv_row,
            self.sched,
        ] {
            out.u8(v);
        }
        out.u64(self.session_seed);
        out.u64(self.signature);
        out.u64(self.fingerprint);
        out.u32(self.repetition);
        for p in self.params {
            out.f64(p);
        }
    }

    /// Decodes one row; `None` on short input.
    #[must_use]
    pub fn decode(r: &mut ByteReader<'_>) -> Option<Self> {
        let mut u8s = [0u8; 6];
        for slot in &mut u8s {
            *slot = r.u8()?;
        }
        let session_seed = r.u64()?;
        let signature = r.u64()?;
        let fingerprint = r.u64()?;
        let repetition = r.u32()?;
        let mut params = [0.0f64; 8];
        for slot in &mut params {
            *slot = r.f64()?;
        }
        Some(Self {
            oracle: u8s[0],
            scenario: u8s[1],
            position: u8s[2],
            fault: u8s[3],
            iv_row: u8s[4],
            sched: u8s[5],
            session_seed,
            signature,
            fingerprint,
            repetition,
            params,
        })
    }
}

/// Encodes a slice of cell rows into one contiguous fixed-width payload.
#[must_use]
pub fn encode_cells(rows: &[CellRow]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for row in rows {
        row.encode(&mut w);
    }
    w.into_bytes()
}

/// Encodes a slice of finding rows into one contiguous payload.
#[must_use]
pub fn encode_findings(rows: &[FindingRow]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    for row in rows {
        row.encode(&mut w);
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn sample_cell(i: u32) -> CellRow {
        CellRow {
            scenario: (i % 6) as u8,
            position: (i % 2) as u8,
            fault: (i % 4) as u8,
            iv_row: (i % 8) as u8,
            mitigation: (i % 3) as u8,
            sched: (i % 2) as u8,
            seed: 2025,
            runs: 120,
            a1: i % 40,
            a2: i % 17,
            prevented: 120 - (i % 40) - (i % 17),
            hazard: i % 90,
            aeb_n: i % 60,
            driver_brake_n: i % 50,
            driver_steer_n: i % 30,
            ml_n: 0,
            aeb_time_sum: f64::from(i) * 0.321,
            aeb_time_n: i % 60,
            driver_brake_time_sum: f64::from(i) * 1.5,
            driver_brake_time_n: i % 50,
            driver_steer_time_sum: 0.0,
            driver_steer_time_n: 0,
        }
    }

    #[test]
    fn cell_row_width_is_exact() {
        let row = sample_cell(7);
        let mut w = ByteWriter::new();
        row.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), CellRow::WIDTH);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(CellRow::decode(&mut r), Some(row));
        assert!(r.exhausted());
    }

    #[test]
    fn finding_row_width_is_exact() {
        let row = FindingRow {
            oracle: 3,
            scenario: 4,
            position: 0,
            fault: 1,
            iv_row: 2,
            sched: 0,
            session_seed: 42,
            signature: 0xDEAD_BEEF,
            fingerprint: 0x1234_5678_9ABC_DEF0,
            repetition: 1,
            params: [0.5, 1.0, -20.25, 12.0, 1.0, 1.0, 0.0, 0.0],
        };
        let mut w = ByteWriter::new();
        row.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), FindingRow::WIDTH);
        let mut r = ByteReader::new(&bytes);
        assert_eq!(FindingRow::decode(&mut r), Some(row));
        assert!(r.exhausted());
    }

    #[test]
    fn truncated_rows_decode_to_none() {
        let bytes = encode_cells(&[sample_cell(1)]);
        for cut in 0..CellRow::WIDTH {
            let mut r = ByteReader::new(&bytes[..cut]);
            assert!(CellRow::decode(&mut r).is_none(), "cut {cut}");
        }
    }

    #[test]
    fn stats_round_trip_recovers_counts() {
        use adas_core::CellStats;
        let s = CellStats {
            runs: 120,
            a1_pct: 100.0 * 13.0 / 120.0,
            a2_pct: 100.0 * 7.0 / 120.0,
            prevented_pct: 100.0 * 100.0 / 120.0,
            hazard_pct: 100.0 * 119.0 / 120.0,
            aeb_mitigation_time: Some(1.25),
            driver_brake_mitigation_time: None,
            driver_steer_mitigation_time: Some(3.5),
            aeb_trigger_rate: 100.0 * 55.0 / 120.0,
            driver_brake_trigger_rate: 100.0 * 44.0 / 120.0,
            driver_steer_trigger_rate: 100.0 * 11.0 / 120.0,
            ml_trigger_rate: 0.0,
        };
        let row = CellRow::from_stats((super::ANY, super::ANY, 1, 2, 0, 0), 2025, &s);
        assert_eq!(row.runs, 120);
        assert_eq!(row.a1, 13);
        assert_eq!(row.a2, 7);
        assert_eq!(row.prevented, 100);
        assert_eq!(row.hazard, 119);
        assert_eq!(row.aeb_n, 55);
        assert_eq!(row.driver_brake_n, 44);
        assert_eq!(row.driver_steer_n, 11);
        // No driver-brake mean reported → no time contribution.
        assert_eq!(row.driver_brake_time_n, 0);
        assert_eq!(row.driver_brake_time_sum, 0.0);
        // Means re-derive exactly.
        assert!((row.aeb_time_sum / f64::from(row.aeb_time_n) - 1.25).abs() < 1e-12);
    }
}
