//! The on-disk segment: versioned header + FNV-checksummed record blocks.
//!
//! ```text
//! header   "ADASSEG1" | version u16 | kind u8 | 0 | record_width u32 | fnv u64
//! block    "ABLK" | count u32 | count × width record bytes | fnv u64
//! block    …
//! ```
//!
//! Everything is little-endian. The header checksum covers the 16 bytes
//! before it; each block checksum covers that block's payload. The reader
//! trusts nothing it cannot verify: a block whose magic, structural
//! bounds, or checksum fail is skipped by scanning forward for the next
//! block magic (`resync`), and a tail with no further verifiable block is
//! reported as truncation — so a crash mid-append, a torn write, or a
//! flipped bit costs at most the damaged block, never the segment, and
//! the reader never panics or over-allocates on hostile lengths.

use crate::record::RecordKind;
use crate::store::{SegmentReport, StoreError};
use adas_core::Fingerprint;
use std::fs::File;
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment file magic.
pub const SEG_MAGIC: &[u8; 8] = b"ADASSEG1";
/// Segment format version.
pub const SEG_VERSION: u16 = 1;
/// Block magic.
pub const BLOCK_MAGIC: &[u8; 4] = b"ABLK";
/// Header length in bytes.
pub const HEADER_LEN: usize = 24;
/// Records the writer packs per block (the reader accepts any verifiable
/// count up to [`MAX_BLOCK_RECORDS`]).
pub const REC_PER_BLOCK: usize = 1024;
/// Upper bound a reader accepts for one block's record count — bounds the
/// allocation a corrupted count field can provoke.
pub const MAX_BLOCK_RECORDS: usize = 65_536;
/// Upper bound a reader accepts for one block's payload bytes.
pub const MAX_BLOCK_BYTES: usize = 16 << 20;

fn fnv(bytes: &[u8]) -> u64 {
    Fingerprint::new().write_bytes(bytes).value()
}

/// Renders the 24-byte segment header.
#[must_use]
pub fn header_bytes(kind: RecordKind) -> [u8; HEADER_LEN] {
    let mut h = [0u8; HEADER_LEN];
    h[..8].copy_from_slice(SEG_MAGIC);
    h[8..10].copy_from_slice(&SEG_VERSION.to_le_bytes());
    h[10] = kind.code();
    h[11] = 0;
    h[12..16].copy_from_slice(&u32::try_from(kind.width()).expect("small width").to_le_bytes());
    let sum = fnv(&h[..16]);
    h[16..24].copy_from_slice(&sum.to_le_bytes());
    h
}

/// Parses and validates a segment header. Errors on bad magic, version,
/// kind, width, or checksum — an unreadable header means the file is not
/// a segment (or its first sector was destroyed), so there is no record
/// geometry to recover with.
pub fn parse_header(h: &[u8]) -> Result<RecordKind, StoreError> {
    if h.len() < HEADER_LEN || &h[..8] != SEG_MAGIC {
        return Err(StoreError::Format("bad segment magic".into()));
    }
    let stored = u64::from_le_bytes(h[16..24].try_into().expect("8 bytes"));
    if fnv(&h[..16]) != stored {
        return Err(StoreError::Format("segment header checksum mismatch".into()));
    }
    let version = u16::from_le_bytes(h[8..10].try_into().expect("2 bytes"));
    if version != SEG_VERSION {
        return Err(StoreError::Format(format!("unsupported segment version {version}")));
    }
    let kind = RecordKind::from_code(h[10])
        .ok_or_else(|| StoreError::Format(format!("unknown record kind {}", h[10])))?;
    let width = u32::from_le_bytes(h[12..16].try_into().expect("4 bytes")) as usize;
    if width != kind.width() {
        return Err(StoreError::Format(format!(
            "record width {width} does not match kind {kind:?} ({})",
            kind.width()
        )));
    }
    Ok(kind)
}

/// Buffered appender for one segment file.
#[derive(Debug)]
pub struct SegmentWriter {
    file: BufWriter<File>,
    path: PathBuf,
    kind: RecordKind,
    /// Pending record bytes, flushed as one block.
    buf: Vec<u8>,
    buffered: usize,
    records: u64,
}

impl SegmentWriter {
    /// Creates `path` (truncating any previous content) and writes the
    /// header.
    pub fn create(path: &Path, kind: RecordKind) -> Result<Self, StoreError> {
        let file = File::create(path).map_err(|e| StoreError::io(path, &e))?;
        let mut w = Self {
            file: BufWriter::new(file),
            path: path.to_owned(),
            kind,
            buf: Vec::new(),
            buffered: 0,
            records: 0,
        };
        w.file
            .write_all(&header_bytes(kind))
            .map_err(|e| StoreError::io(&w.path, &e))?;
        Ok(w)
    }

    /// The segment's record kind.
    #[must_use]
    pub fn kind(&self) -> RecordKind {
        self.kind
    }

    /// Records appended so far (buffered + flushed).
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Appends pre-encoded record bytes (length must be a whole number of
    /// records). Blocks are cut every [`REC_PER_BLOCK`] records.
    pub fn append_bytes(&mut self, payload: &[u8]) -> Result<(), StoreError> {
        let width = self.kind.width();
        if payload.len() % width != 0 {
            return Err(StoreError::Format(format!(
                "payload of {} bytes is not a whole number of {width}-byte records",
                payload.len()
            )));
        }
        self.buf.extend_from_slice(payload);
        self.buffered += payload.len() / width;
        self.records += (payload.len() / width) as u64;
        while self.buffered >= REC_PER_BLOCK {
            self.flush_block(REC_PER_BLOCK)?;
        }
        Ok(())
    }

    fn flush_block(&mut self, count: usize) -> Result<(), StoreError> {
        let width = self.kind.width();
        let take = count.min(self.buffered);
        if take == 0 {
            return Ok(());
        }
        let bytes = take * width;
        let payload: Vec<u8> = self.buf.drain(..bytes).collect();
        self.buffered -= take;
        let mut frame = Vec::with_capacity(4 + 4 + payload.len() + 8);
        frame.extend_from_slice(BLOCK_MAGIC);
        frame.extend_from_slice(&u32::try_from(take).expect("block count fits").to_le_bytes());
        frame.extend_from_slice(&payload);
        frame.extend_from_slice(&fnv(&payload).to_le_bytes());
        self.file
            .write_all(&frame)
            .map_err(|e| StoreError::io(&self.path, &e))
    }

    /// Flushes buffered records as a (possibly short) block and pushes
    /// them to the OS — the durability point a daemon calls per job.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        self.flush_block(self.buffered)?;
        self.file.flush().map_err(|e| StoreError::io(&self.path, &e))
    }

    /// Flushes and closes the segment, returning the record count.
    pub fn finish(mut self) -> Result<u64, StoreError> {
        self.sync()?;
        Ok(self.records)
    }
}

/// Streaming, recovery-first segment reader: yields one verified block
/// payload at a time (bounded memory: [`MAX_BLOCK_BYTES`] plus a scan
/// chunk, regardless of segment size).
#[derive(Debug)]
pub struct SegmentReader<R> {
    inner: R,
    pos: u64,
    len: u64,
    kind: RecordKind,
    report: SegmentReport,
}

impl SegmentReader<File> {
    /// Opens a segment file.
    pub fn open(path: &Path) -> Result<Self, StoreError> {
        let file = File::open(path).map_err(|e| StoreError::io(path, &e))?;
        let mut reader = Self::new(file)?;
        reader.report.path = path.to_owned();
        Ok(reader)
    }
}

impl<R: Read + Seek> SegmentReader<R> {
    /// Wraps any seekable byte source (tests use `io::Cursor`).
    pub fn new(mut inner: R) -> Result<Self, StoreError> {
        let len = inner
            .seek(SeekFrom::End(0))
            .map_err(|e| StoreError::Format(format!("seek: {e}")))?;
        inner
            .seek(SeekFrom::Start(0))
            .map_err(|e| StoreError::Format(format!("seek: {e}")))?;
        let mut header = [0u8; HEADER_LEN];
        inner
            .read_exact(&mut header)
            .map_err(|_| StoreError::Format("segment shorter than its header".into()))?;
        let kind = parse_header(&header)?;
        Ok(Self {
            inner,
            pos: HEADER_LEN as u64,
            len,
            kind,
            report: SegmentReport::default(),
        })
    }

    /// The segment's record kind.
    #[must_use]
    pub fn kind(&self) -> RecordKind {
        self.kind
    }

    /// Recovery statistics accumulated so far (complete once
    /// [`SegmentReader::next_block`] has returned `None`).
    #[must_use]
    pub fn report(&self) -> &SegmentReport {
        &self.report
    }

    fn read_at(&mut self, pos: u64, buf: &mut [u8]) -> bool {
        if pos + buf.len() as u64 > self.len {
            return false;
        }
        self.inner.seek(SeekFrom::Start(pos)).is_ok() && self.inner.read_exact(buf).is_ok()
    }

    /// Scans forward from `from` for the next block magic; `None` when the
    /// rest of the file contains no candidate.
    fn scan_magic(&mut self, from: u64) -> Option<u64> {
        const CHUNK: usize = 64 << 10;
        let mut at = from;
        let mut buf = vec![0u8; CHUNK];
        while at + BLOCK_MAGIC.len() as u64 <= self.len {
            let take = usize::try_from((self.len - at).min(CHUNK as u64)).expect("chunk fits");
            if !self.read_at(at, &mut buf[..take]) {
                return None;
            }
            if let Some(hit) = buf[..take]
                .windows(BLOCK_MAGIC.len())
                .position(|w| w == BLOCK_MAGIC)
            {
                return Some(at + hit as u64);
            }
            if take < BLOCK_MAGIC.len() {
                return None;
            }
            // Overlap so a magic straddling the chunk boundary is found.
            at += (take - (BLOCK_MAGIC.len() - 1)) as u64;
        }
        None
    }

    /// Marks the current candidate damaged and repositions after the next
    /// magic candidate; returns false when the tail holds none.
    fn resync(&mut self, from: u64) -> bool {
        self.report.corrupt_blocks += 1;
        match self.scan_magic(from) {
            Some(next) => {
                self.pos = next;
                true
            }
            None => {
                self.report.truncated = true;
                false
            }
        }
    }

    /// Returns the next verified block payload (a whole number of
    /// records), or `None` at end of recoverable data.
    pub fn next_block(&mut self) -> Option<Vec<u8>> {
        let width = self.kind.width() as u64;
        loop {
            if self.pos + 8 > self.len {
                // A clean file ends exactly here; anything shorter than a
                // block header is an unverifiable (torn) tail.
                self.report.truncated |= self.pos != self.len;
                return None;
            }
            let mut head = [0u8; 8];
            if !self.read_at(self.pos, &mut head) {
                self.report.truncated = true;
                return None;
            }
            if &head[..4] != BLOCK_MAGIC {
                if !self.resync(self.pos + 1) {
                    return None;
                }
                continue;
            }
            let count = u64::from(u32::from_le_bytes(head[4..8].try_into().expect("4 bytes")));
            let payload_len = count * width;
            let plausible = count >= 1
                && count <= MAX_BLOCK_RECORDS as u64
                && payload_len <= MAX_BLOCK_BYTES as u64
                && self.pos + 8 + payload_len + 8 <= self.len;
            if !plausible {
                if !self.resync(self.pos + 1) {
                    return None;
                }
                continue;
            }
            let mut payload = vec![0u8; usize::try_from(payload_len).expect("bounded")];
            let mut sum = [0u8; 8];
            if !self.read_at(self.pos + 8, &mut payload)
                || !self.read_at(self.pos + 8 + payload_len, &mut sum)
            {
                self.report.truncated = true;
                return None;
            }
            if fnv(&payload) != u64::from_le_bytes(sum) {
                if !self.resync(self.pos + 1) {
                    return None;
                }
                continue;
            }
            self.pos += 8 + payload_len + 8;
            self.report.blocks += 1;
            self.report.records += count;
            return Some(payload);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{encode_cells, CellRow};
    use std::io::Cursor;

    fn rows(n: u32) -> Vec<CellRow> {
        (0..n)
            .map(|i| CellRow {
                scenario: (i % 6) as u8,
                position: (i % 2) as u8,
                fault: (i % 4) as u8,
                iv_row: (i % 8) as u8,
                mitigation: 0,
                sched: 0,
                seed: 1,
                runs: 10 + i,
                a1: i,
                a2: 0,
                prevented: 10,
                hazard: i / 2,
                aeb_n: 0,
                driver_brake_n: 0,
                driver_steer_n: 0,
                ml_n: 0,
                aeb_time_sum: f64::from(i),
                aeb_time_n: 1,
                driver_brake_time_sum: 0.0,
                driver_brake_time_n: 0,
                driver_steer_time_sum: 0.0,
                driver_steer_time_n: 0,
            })
            .collect()
    }

    fn write_segment(rows: &[CellRow]) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!(
            "adas-store-test-{}-{}",
            std::process::id(),
            rows.len()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.seg");
        let mut w = SegmentWriter::create(&path, RecordKind::Cell).unwrap();
        w.append_bytes(&encode_cells(rows)).unwrap();
        w.finish().unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    }

    fn read_all(bytes: Vec<u8>) -> (Vec<CellRow>, SegmentReport) {
        let mut r = SegmentReader::new(Cursor::new(bytes)).unwrap();
        let mut out = Vec::new();
        while let Some(block) = r.next_block() {
            for chunk in block.chunks_exact(CellRow::WIDTH) {
                out.push(
                    CellRow::decode(&mut adas_core::job::ByteReader::new(chunk)).expect("decodes"),
                );
            }
        }
        (out, r.report().clone())
    }

    #[test]
    fn round_trip_multi_block() {
        let input = rows(REC_PER_BLOCK as u32 * 2 + 37);
        let (back, report) = read_all(write_segment(&input));
        assert_eq!(back, input);
        assert_eq!(report.blocks, 3);
        assert_eq!(report.corrupt_blocks, 0);
        assert!(!report.truncated);
    }

    #[test]
    fn truncated_tail_keeps_every_whole_block() {
        let input = rows(REC_PER_BLOCK as u32 + 100);
        let bytes = write_segment(&input);
        // Cut into the second (short) block's payload.
        let cut = bytes.len() - 40;
        let (back, report) = read_all(bytes[..cut].to_vec());
        assert_eq!(back, input[..REC_PER_BLOCK]);
        assert!(report.truncated);
    }

    #[test]
    fn corrupted_block_is_skipped_not_fatal() {
        let input = rows(REC_PER_BLOCK as u32 * 3);
        let mut bytes = write_segment(&input);
        // Flip a byte inside the second block's payload.
        let second_block_payload = HEADER_LEN + (8 + REC_PER_BLOCK * CellRow::WIDTH + 8) + 8 + 64;
        bytes[second_block_payload] ^= 0xFF;
        let (back, report) = read_all(bytes);
        assert_eq!(back.len(), REC_PER_BLOCK * 2);
        assert_eq!(back[..REC_PER_BLOCK], input[..REC_PER_BLOCK]);
        assert_eq!(back[REC_PER_BLOCK..], input[REC_PER_BLOCK * 2..]);
        assert!(report.corrupt_blocks >= 1);
    }

    #[test]
    fn hostile_count_field_cannot_force_allocation() {
        let input = rows(8);
        let mut bytes = write_segment(&input);
        // Claim u32::MAX records in the block header.
        bytes[HEADER_LEN + 4..HEADER_LEN + 8].copy_from_slice(&u32::MAX.to_le_bytes());
        let (back, report) = read_all(bytes);
        assert!(back.is_empty());
        assert!(report.truncated || report.corrupt_blocks > 0);
    }

    #[test]
    fn header_tamper_is_rejected() {
        let mut bytes = write_segment(&rows(4));
        bytes[9] ^= 0x01; // version field → checksum mismatch
        assert!(SegmentReader::new(Cursor::new(bytes)).is_err());
        assert!(SegmentReader::new(Cursor::new(vec![0u8; 10])).is_err());
    }

    #[test]
    fn empty_segment_reads_cleanly() {
        let path = std::env::temp_dir().join(format!("adas-store-empty-{}.seg", std::process::id()));
        SegmentWriter::create(&path, RecordKind::Cell)
            .unwrap()
            .finish()
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let (back, report) = read_all(bytes);
        assert!(back.is_empty());
        assert!(!report.truncated);
        assert_eq!(report.corrupt_blocks, 0);
    }
}
