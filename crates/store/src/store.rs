//! The store directory: a set of append-only segments plus the
//! `verify`/`compact` maintenance operations.
//!
//! Writers never touch an existing segment — each appender claims the
//! next free `<kind>-NNNNNNNN.seg` name, so concurrent daemons and CLI
//! runs cannot interleave blocks. Readers chain every segment of a kind
//! in file-name order, which makes iteration (and therefore compaction
//! output) deterministic for a given directory state.

use crate::record::{CellRow, FindingRow, RecordKind};
use crate::segment::{SegmentReader, SegmentWriter};
use adas_core::job::ByteReader;
use std::fmt;
use std::path::{Path, PathBuf};

/// Store-level errors. Recovery conditions (corrupt blocks, truncated
/// tails) are *not* errors — they are reported in [`SegmentReport`]s and
/// the affected records are simply absent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// Filesystem failure, with the path involved.
    Io(String),
    /// Structural failure: bad header, wrong width, misuse.
    Format(String),
}

impl StoreError {
    /// Wraps an I/O error with the path involved.
    #[must_use]
    pub fn io(path: &Path, err: &std::io::Error) -> Self {
        StoreError::Io(format!("{}: {err}", path.display()))
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(m) => write!(f, "io error: {m}"),
            StoreError::Format(m) => write!(f, "format error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Per-segment read/recovery statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SegmentReport {
    /// Segment path (empty for in-memory readers).
    pub path: PathBuf,
    /// Blocks that verified.
    pub blocks: u64,
    /// Records yielded from verified blocks.
    pub records: u64,
    /// Damaged block candidates skipped by resync.
    pub corrupt_blocks: u64,
    /// True when the file ended in unverifiable bytes.
    pub truncated: bool,
}

impl SegmentReport {
    /// True when every byte of the segment verified.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.corrupt_blocks == 0 && !self.truncated
    }
}

/// `verify` result over a whole store directory.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// One report per segment, in iteration order.
    pub segments: Vec<SegmentReport>,
}

impl VerifyReport {
    /// Total intact records across all segments.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.segments.iter().map(|s| s.records).sum()
    }

    /// True when every segment verified end to end.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.segments.iter().all(SegmentReport::clean)
    }
}

/// A store directory handle.
#[derive(Debug, Clone)]
pub struct Store {
    dir: PathBuf,
}

impl Store {
    /// Opens (creating if needed) a store directory.
    pub fn open(dir: &Path) -> Result<Self, StoreError> {
        std::fs::create_dir_all(dir).map_err(|e| StoreError::io(dir, &e))?;
        Ok(Self { dir: dir.to_owned() })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Existing segment paths of `kind`, in file-name order.
    pub fn segments(&self, kind: RecordKind) -> Result<Vec<PathBuf>, StoreError> {
        let mut out = Vec::new();
        let entries =
            std::fs::read_dir(&self.dir).map_err(|e| StoreError::io(&self.dir, &e))?;
        for entry in entries {
            let entry = entry.map_err(|e| StoreError::io(&self.dir, &e))?;
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if name.starts_with(kind.prefix()) && name.ends_with(".seg") {
                out.push(entry.path());
            }
        }
        out.sort();
        Ok(out)
    }

    /// Claims the next free segment name for `kind` and opens a writer on
    /// it.
    pub fn create_segment(&self, kind: RecordKind) -> Result<SegmentWriter, StoreError> {
        let existing = self.segments(kind)?;
        let mut index = existing.len() as u64;
        loop {
            let path = self.dir.join(format!("{}-{index:08}.seg", kind.prefix()));
            if !path.exists() {
                return SegmentWriter::create(&path, kind);
            }
            index += 1;
        }
    }

    /// One-shot append of cell rows as a fresh segment.
    pub fn append_cells(&self, rows: &[CellRow]) -> Result<PathBuf, StoreError> {
        let mut w = self.create_segment(RecordKind::Cell)?;
        w.append_bytes(&crate::record::encode_cells(rows))?;
        let path = self
            .segments(RecordKind::Cell)?
            .into_iter()
            .next_back()
            .unwrap_or_default();
        w.finish()?;
        Ok(path)
    }

    /// One-shot append of finding rows as a fresh segment.
    pub fn append_findings(&self, rows: &[FindingRow]) -> Result<PathBuf, StoreError> {
        let mut w = self.create_segment(RecordKind::Finding)?;
        w.append_bytes(&crate::record::encode_findings(rows))?;
        let path = self
            .segments(RecordKind::Finding)?
            .into_iter()
            .next_back()
            .unwrap_or_default();
        w.finish()?;
        Ok(path)
    }

    /// Streams every intact record of `kind` through `sink`, one verified
    /// block at a time (bounded memory). Segments that fail to open (bad
    /// header) are reported with zero records rather than aborting the
    /// scan. Returns per-segment reports.
    pub fn scan(
        &self,
        kind: RecordKind,
        mut sink: impl FnMut(&[u8]),
    ) -> Result<Vec<SegmentReport>, StoreError> {
        let mut reports = Vec::new();
        for path in self.segments(kind)? {
            match SegmentReader::open(&path) {
                Ok(mut reader) => {
                    while let Some(block) = reader.next_block() {
                        for chunk in block.chunks_exact(kind.width()) {
                            sink(chunk);
                        }
                    }
                    reports.push(reader.report().clone());
                }
                Err(_) => reports.push(SegmentReport {
                    path,
                    corrupt_blocks: 1,
                    ..SegmentReport::default()
                }),
            }
        }
        Ok(reports)
    }

    /// Streams every intact [`CellRow`] through `sink`.
    pub fn scan_cells(
        &self,
        mut sink: impl FnMut(&CellRow),
    ) -> Result<Vec<SegmentReport>, StoreError> {
        self.scan(RecordKind::Cell, |chunk| {
            if let Some(row) = CellRow::decode(&mut ByteReader::new(chunk)) {
                sink(&row);
            }
        })
    }

    /// Streams every intact [`FindingRow`] through `sink`.
    pub fn scan_findings(
        &self,
        mut sink: impl FnMut(&FindingRow),
    ) -> Result<Vec<SegmentReport>, StoreError> {
        self.scan(RecordKind::Finding, |chunk| {
            if let Some(row) = FindingRow::decode(&mut ByteReader::new(chunk)) {
                sink(&row);
            }
        })
    }

    /// Verifies every segment of both kinds: walks all blocks, counting
    /// intact records, damaged blocks, and truncation — read-only.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        for kind in [RecordKind::Cell, RecordKind::Finding] {
            report.segments.extend(self.scan(kind, |_| {})?);
        }
        Ok(report)
    }

    /// Rewrites all segments of `kind` into one fresh segment holding
    /// every intact record (in iteration order), then removes the old
    /// files. Damaged blocks are dropped — compaction is how a store
    /// sheds the scar tissue `verify` reports. Returns the surviving
    /// record count.
    pub fn compact(&self, kind: RecordKind) -> Result<u64, StoreError> {
        let old = self.segments(kind)?;
        if old.is_empty() {
            return Ok(0);
        }
        // Write to a temp name so a crash mid-compaction never claims a
        // live segment name with partial content.
        let tmp = self.dir.join(format!("{}.compacting", kind.prefix()));
        let mut w = SegmentWriter::create(&tmp, kind)?;
        let mut err = None;
        self.scan(kind, |chunk| {
            if err.is_none() {
                if let Err(e) = w.append_bytes(chunk) {
                    err = Some(e);
                }
            }
        })?;
        if let Some(e) = err {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        let records = w.finish()?;
        for path in &old {
            std::fs::remove_file(path).map_err(|e| StoreError::io(path, &e))?;
        }
        let fresh = self.dir.join(format!("{}-{:08}.seg", kind.prefix(), 0));
        std::fs::rename(&tmp, &fresh).map_err(|e| StoreError::io(&fresh, &e))?;
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ANY;

    fn tmp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("adas-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Store::open(&dir).unwrap()
    }

    fn row(i: u32) -> CellRow {
        CellRow {
            scenario: ANY,
            position: ANY,
            fault: (i % 4) as u8,
            iv_row: (i % 8) as u8,
            mitigation: 0,
            sched: 0,
            seed: 2025,
            runs: 100,
            a1: i % 10,
            a2: i % 3,
            prevented: 80,
            hazard: 90,
            aeb_n: 40,
            driver_brake_n: 30,
            driver_steer_n: 10,
            ml_n: 0,
            aeb_time_sum: f64::from(i),
            aeb_time_n: 40,
            driver_brake_time_sum: 1.0,
            driver_brake_time_n: 30,
            driver_steer_time_sum: 0.5,
            driver_steer_time_n: 10,
        }
    }

    #[test]
    fn multi_segment_scan_chains_in_name_order() {
        let store = tmp_store("chain");
        store.append_cells(&[row(0), row(1)]).unwrap();
        store.append_cells(&[row(2)]).unwrap();
        let mut seen = Vec::new();
        let reports = store.scan_cells(|r| seen.push(*r)).unwrap();
        assert_eq!(seen, vec![row(0), row(1), row(2)]);
        assert_eq!(reports.len(), 2);
        assert!(reports.iter().all(SegmentReport::clean));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn verify_flags_a_damaged_segment_and_compact_heals_it() {
        let store = tmp_store("heal");
        store.append_cells(&(0..3000).map(row).collect::<Vec<_>>()).unwrap();
        let seg = store.segments(RecordKind::Cell).unwrap()[0].clone();
        let mut bytes = std::fs::read(&seg).unwrap();
        // Damage the middle block's payload.
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x5A;
        std::fs::write(&seg, &bytes).unwrap();

        let v = store.verify().unwrap();
        assert!(!v.clean());
        // 3000 rows → blocks of 1024/1024/952; the damaged middle block
        // drops, the other two survive.
        let survivors = v.records();
        assert_eq!(survivors, 1024 + 952);

        let compacted = store.compact(RecordKind::Cell).unwrap();
        assert_eq!(compacted, survivors);
        let v2 = store.verify().unwrap();
        assert!(v2.clean());
        assert_eq!(v2.records(), survivors);
        assert_eq!(store.segments(RecordKind::Cell).unwrap().len(), 1);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn kinds_do_not_mix() {
        let store = tmp_store("kinds");
        store.append_cells(&[row(0)]).unwrap();
        store
            .append_findings(&[FindingRow {
                oracle: 3,
                scenario: 1,
                position: 0,
                fault: 2,
                iv_row: 1,
                sched: 0,
                session_seed: 7,
                signature: 99,
                fingerprint: 1,
                repetition: 0,
                params: [0.0; 8],
            }])
            .unwrap();
        let mut cells = 0;
        let mut findings = 0;
        store.scan_cells(|_| cells += 1).unwrap();
        store.scan_findings(|_| findings += 1).unwrap();
        assert_eq!((cells, findings), (1, 1));
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
