//! Deterministic synthetic-row generation for scale tests.
//!
//! The acceptance bar for the store is "aggregate ≥ 1 M records in
//! bounded memory"; this module manufactures that load without running a
//! million simulations. Everything derives from a splitmix64 stream over
//! the caller's seed, so the same `(seed, count)` always yields the same
//! rows — scale tests and the `adas-store synth` CLI verb are
//! reproducible byte for byte.

use crate::record::{CellRow, FindingRow};

/// splitmix64 — the standard 64-bit mix; tiny, full-period, and already
/// the idiom used by the fuzz engine's seed scrambler.
#[derive(Debug, Clone)]
pub struct SplitMix {
    state: u64,
}

impl SplitMix {
    /// Creates a stream over `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..bound` (`bound` > 0).
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound.max(1)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Generates `count` synthetic cell rows from `seed`. Coordinates cover
/// the realistic grid; counts are internally consistent (`a1 + a2 +
/// prevented == runs`, trigger counts ≤ runs) so aggregates over the
/// synthetic load look like real campaign output.
#[must_use]
pub fn cells(seed: u64, count: u64) -> Vec<CellRow> {
    let mut rng = SplitMix::new(seed);
    let mut out = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    for _ in 0..count {
        out.push(cell(&mut rng));
    }
    out
}

fn cell(rng: &mut SplitMix) -> CellRow {
    let runs = 50 + rng.below(150) as u32;
    let a1 = rng.below(u64::from(runs) / 3) as u32;
    let a2 = rng.below(u64::from(runs - a1) / 4) as u32;
    let aeb_n = rng.below(u64::from(runs)) as u32;
    let driver_brake_n = rng.below(u64::from(runs)) as u32;
    let driver_steer_n = rng.below(u64::from(runs) / 2) as u32;
    CellRow {
        scenario: rng.below(6) as u8,
        position: rng.below(2) as u8,
        fault: rng.below(4) as u8,
        iv_row: rng.below(8) as u8,
        mitigation: rng.below(3) as u8,
        sched: rng.below(2) as u8,
        seed: rng.next_u64(),
        runs,
        a1,
        a2,
        prevented: runs - a1 - a2,
        hazard: rng.below(u64::from(runs) + 1) as u32,
        aeb_n,
        driver_brake_n,
        driver_steer_n,
        ml_n: rng.below(u64::from(runs) / 4 + 1) as u32,
        aeb_time_sum: rng.unit_f64() * 3.0 * f64::from(aeb_n),
        aeb_time_n: aeb_n,
        driver_brake_time_sum: rng.unit_f64() * 4.0 * f64::from(driver_brake_n),
        driver_brake_time_n: driver_brake_n,
        driver_steer_time_sum: rng.unit_f64() * 2.0 * f64::from(driver_steer_n),
        driver_steer_time_n: driver_steer_n,
    }
}

/// Generates `count` synthetic finding rows from `seed`.
#[must_use]
pub fn findings(seed: u64, count: u64) -> Vec<FindingRow> {
    let mut rng = SplitMix::new(seed ^ 0xF1D1_1265);
    let mut out = Vec::with_capacity(usize::try_from(count).unwrap_or(0));
    for _ in 0..count {
        let mut params = [0.0f64; 8];
        for p in &mut params {
            *p = rng.unit_f64() * 40.0 - 20.0;
        }
        out.push(FindingRow {
            oracle: rng.below(6) as u8,
            scenario: rng.below(6) as u8,
            position: rng.below(2) as u8,
            fault: rng.below(4) as u8,
            iv_row: rng.below(8) as u8,
            sched: rng.below(5) as u8,
            session_seed: rng.next_u64(),
            signature: rng.next_u64(),
            fingerprint: rng.next_u64(),
            repetition: rng.below(3) as u32,
            params,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_rows() {
        assert_eq!(cells(7, 100), cells(7, 100));
        assert_eq!(findings(7, 50), findings(7, 50));
        assert_ne!(cells(7, 10), cells(8, 10));
    }

    #[test]
    fn counts_are_internally_consistent() {
        for row in cells(2025, 500) {
            assert_eq!(row.a1 + row.a2 + row.prevented, row.runs);
            assert!(row.hazard <= row.runs);
            assert!(row.aeb_n <= row.runs);
        }
    }
}
