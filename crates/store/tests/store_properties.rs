//! Property tests of the columnar store: row-codec round-trips, crash
//! recovery (truncated tails, corrupted blocks — every intact record
//! survives, nothing ever panics), and streaming-aggregation ≡ full-scan
//! equivalence.
//!
//! The store is the fleet's durable memory; these properties are what
//! make `adas-store query` trustworthy after a worker crash or a bad
//! disk: a reader either yields a bit-exact record or skips it, never a
//! silently wrong one.

use adas_core::job::{ByteReader, ByteWriter};
use adas_store::{agg, synth, CellRow, FindingRow, GroupBy, RecordKind, Store};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

static DIRS: AtomicUsize = AtomicUsize::new(0);

/// A fresh scratch directory per proptest case (cases run in sequence
/// but must never see each other's segments).
fn scratch() -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "adas-store-props-{}-{}",
        std::process::id(),
        DIRS.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// The single cells segment a fresh append produced.
fn only_cell_segment(store: &Store) -> PathBuf {
    let segs = store.segments(RecordKind::Cell).expect("list segments");
    assert_eq!(segs.len(), 1, "expected exactly one segment");
    segs[0].clone()
}

proptest! {
    #[test]
    fn cell_row_codec_round_trips_bit_exactly(
        coords in prop::collection::vec(0u64..256, 6),
        seed in 0u64..u64::MAX,
        counts in prop::collection::vec(0u64..4_000_000_000, 9),
        sums in prop::collection::vec(-1.0e9f64..1.0e9, 3),
        time_ns in prop::collection::vec(0u64..4_000_000_000, 3),
    ) {
        let row = CellRow {
            scenario: coords[0] as u8,
            position: coords[1] as u8,
            fault: coords[2] as u8,
            iv_row: coords[3] as u8,
            mitigation: coords[4] as u8,
            sched: coords[5] as u8,
            seed,
            runs: counts[0] as u32,
            a1: counts[1] as u32,
            a2: counts[2] as u32,
            prevented: counts[3] as u32,
            hazard: counts[4] as u32,
            aeb_n: counts[5] as u32,
            driver_brake_n: counts[6] as u32,
            driver_steer_n: counts[7] as u32,
            ml_n: counts[8] as u32,
            aeb_time_sum: sums[0],
            aeb_time_n: time_ns[0] as u32,
            driver_brake_time_sum: sums[1],
            driver_brake_time_n: time_ns[1] as u32,
            driver_steer_time_sum: sums[2],
            driver_steer_time_n: time_ns[2] as u32,
        };
        let mut w = ByteWriter::new();
        row.encode(&mut w);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), CellRow::WIDTH);
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(CellRow::decode(&mut r), Some(row));
        prop_assert!(r.exhausted());
    }

    #[test]
    fn finding_row_codec_round_trips_bit_exactly(
        coords in prop::collection::vec(0u64..256, 6),
        ids in prop::collection::vec(0u64..u64::MAX, 3),
        repetition in 0u64..4_000_000_000,
        params in prop::collection::vec(-1.0e6f64..1.0e6, 8),
    ) {
        let mut p = [0.0f64; 8];
        p.copy_from_slice(&params);
        let row = FindingRow {
            oracle: coords[0] as u8,
            scenario: coords[1] as u8,
            position: coords[2] as u8,
            fault: coords[3] as u8,
            iv_row: coords[4] as u8,
            sched: coords[5] as u8,
            session_seed: ids[0],
            signature: ids[1],
            fingerprint: ids[2],
            repetition: repetition as u32,
            params: p,
        };
        let mut w = ByteWriter::new();
        row.encode(&mut w);
        let bytes = w.into_bytes();
        prop_assert_eq!(bytes.len(), FindingRow::WIDTH);
        let mut r = ByteReader::new(&bytes);
        prop_assert_eq!(FindingRow::decode(&mut r), Some(row));
        prop_assert!(r.exhausted());
    }

    #[test]
    fn truncated_tail_yields_an_exact_prefix_and_never_panics(
        seed in 0u64..1_000_000,
        count in 1u64..2_600,
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch();
        let store = Store::open(&dir).expect("open store");
        let rows = synth::cells(seed, count);
        store.append_cells(&rows).expect("append");
        let seg = only_cell_segment(&store);

        // Chop the file mid-anything: header, block header, payload,
        // checksum — wherever the fraction lands.
        let bytes = std::fs::read(&seg).expect("read segment");
        let keep = ((bytes.len() as f64) * cut_frac) as usize;
        std::fs::write(&seg, &bytes[..keep]).expect("truncate");

        // The scan must not panic, and every record it yields must be a
        // bit-exact prefix of what was written: blocks are sequential,
        // so a tail truncation can only lose records from the end.
        let mut survivors = Vec::new();
        match store.scan_cells(|r| survivors.push(*r)) {
            Ok(reports) => {
                prop_assert!(survivors.len() <= rows.len());
                prop_assert_eq!(&survivors[..], &rows[..survivors.len()]);
                if survivors.len() < rows.len() {
                    prop_assert!(
                        reports.iter().any(|r| r.truncated || r.corrupt_blocks > 0),
                        "lost records must be reported, not silent"
                    );
                }
            }
            // A cut inside the segment header is a malformed segment:
            // an error (not a panic, not garbage rows) is the contract.
            Err(_) => prop_assert!(keep < adas_store::segment::HEADER_LEN),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupted_byte_never_panics_and_survivors_stay_bit_exact(
        seed in 0u64..1_000_000,
        count in 1u64..2_600,
        pos_frac in 0.0f64..1.0,
        bit in 0u64..8,
    ) {
        let dir = scratch();
        let store = Store::open(&dir).expect("open store");
        let rows = synth::cells(seed ^ 0xC0FFEE, count);
        store.append_cells(&rows).expect("append");
        let seg = only_cell_segment(&store);

        let mut bytes = std::fs::read(&seg).expect("read segment");
        let idx = ((bytes.len() as f64) * pos_frac) as usize;
        let idx = idx.min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        std::fs::write(&seg, &bytes).expect("rewrite");

        // Whatever the flip hit — header, block magic, count, payload,
        // checksum — the reader must never yield a record that differs
        // from one it was given. Surviving records stay in write order
        // (corruption drops whole blocks), so they form a subsequence.
        let mut survivors = Vec::new();
        match store.scan_cells(|r| survivors.push(*r)) {
            Ok(_) => {
                let mut it = rows.iter();
                for s in &survivors {
                    prop_assert!(
                        it.any(|r| r == s),
                        "reader yielded a row that was never written (or reordered)"
                    );
                }
            }
            // A flip in the 24-byte header can make the whole segment
            // unreadable; that is an error, not a recovery case.
            Err(_) => prop_assert!(idx < adas_store::segment::HEADER_LEN),
        }
        // verify() walks the same path and must also never panic.
        let _ = store.verify();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn streaming_aggregation_matches_a_full_in_memory_scan(
        seed in 0u64..1_000_000,
        count in 1u64..3_000,
        axes in 0u64..64,
        splits in 1u64..4,
    ) {
        let dir = scratch();
        let store = Store::open(&dir).expect("open store");
        let rows = synth::cells(seed ^ 0xA66, count);
        // Spread the rows over several segments: aggregation must be
        // batching-invariant.
        let chunk = rows.len().div_ceil(splits as usize);
        for part in rows.chunks(chunk.max(1)) {
            store.append_cells(part).expect("append");
        }

        let by = GroupBy {
            scenario: axes & 1 != 0,
            position: axes & 2 != 0,
            fault: axes & 4 != 0,
            iv_row: axes & 8 != 0,
            mitigation: axes & 16 != 0,
            sched: axes & 32 != 0,
        };
        let (streamed, reports) = agg::aggregate(&store, &by).expect("aggregate");
        prop_assert!(reports.iter().all(|r| r.clean()));

        // Reference: fold the original rows directly, same order.
        let mut reference: BTreeMap<_, agg::Accumulator> = BTreeMap::new();
        for row in &rows {
            reference.entry(by.key(row)).or_default().fold(row);
        }
        prop_assert_eq!(streamed, reference);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Compaction folds every segment into one and loses nothing — run on a
/// fixed-size store so the test stays fast.
#[test]
fn compaction_preserves_the_aggregate() {
    let dir = scratch();
    let store = Store::open(&dir).expect("open store");
    for batch in 0..5u64 {
        store
            .append_cells(&synth::cells(batch, 700))
            .expect("append");
    }
    let by = GroupBy::parse("fault,iv").expect("axes");
    let (before, _) = agg::aggregate(&store, &by).expect("aggregate before");
    let folded = store.compact(RecordKind::Cell).expect("compact");
    assert_eq!(folded, 5 * 700);
    assert_eq!(
        store.segments(RecordKind::Cell).expect("segments").len(),
        1,
        "compaction must leave one segment"
    );
    let (after, reports) = agg::aggregate(&store, &by).expect("aggregate after");
    assert!(reports.iter().all(|r| r.clean()));
    assert_eq!(before, after, "compaction must not change any aggregate");
    let _ = std::fs::remove_dir_all(&dir);
}
