//! How much does driver attentiveness matter? Sweeps the driver reaction
//! time (the paper's Table VII axis) over a small campaign and prints the
//! prevention rate per fault type.
//!
//! ```bash
//! cargo run --release --example driver_attentiveness
//! ```

use openadas::attack::FaultType;
use openadas::core::{run_campaign, CellStats, InterventionConfig, PlatformConfig};

fn main() {
    let reps = 2; // small demo campaign: 6 scenarios × 2 positions × 2 reps
    println!("driver-only prevention rate by reaction time ({} runs/cell)\n", 12 * reps);
    println!("{:>10}  {:>18}  {:>18}  {:>10}", "reaction", "Relative Distance", "Desired Curvature", "Mixed");
    for reaction in [1.0, 2.0, 2.5, 3.5] {
        let mut iv = InterventionConfig::driver_only();
        iv.driver_reaction_time = reaction;
        let cfg = PlatformConfig::with_interventions(iv);
        let mut cells = Vec::new();
        for fault in FaultType::ALL {
            let records = run_campaign(Some(fault), &cfg, None, 7, reps);
            let stats = CellStats::from_records(records.iter().map(|(_, r)| r));
            cells.push(stats.prevented_pct);
        }
        println!(
            "{reaction:>9.1}s  {:>17.1}%  {:>17.1}%  {:>9.1}%",
            cells[0], cells[1], cells[2]
        );
    }
    println!("\nAn alert driver (≤2 s) prevents notably more accidents — the paper's Observation 5.");
}
