//! Weather study: the same attacked scenario on dry, rainy and icy roads
//! (the paper's Table VIII axis), showing how reduced friction erodes the
//! safety interventions' ability to mitigate.
//!
//! ```bash
//! cargo run --release --example icy_road
//! ```

use openadas::attack::FaultType;
use openadas::core::{run_campaign, CellStats, InterventionConfig, PlatformConfig};
use openadas::simulator::FrictionCondition;

fn main() {
    let reps = 2;
    println!(
        "prevention rate under Driver+Check+AEB-Compromised vs road friction ({} runs/cell)\n",
        12 * reps
    );
    println!(
        "{:>10}  {:>18}  {:>18}",
        "friction", "Relative Distance", "Desired Curvature"
    );
    for condition in FrictionCondition::TABLE_VIII {
        let mut cfg = PlatformConfig::with_interventions(
            InterventionConfig::driver_check_aeb_compromised(),
        );
        cfg.friction = condition;
        let mut cells = Vec::new();
        for fault in [FaultType::RelativeDistance, FaultType::DesiredCurvature] {
            let records = run_campaign(Some(fault), &cfg, None, 7, reps);
            let stats = CellStats::from_records(records.iter().map(|(_, r)| r));
            cells.push(stats.prevented_pct);
        }
        println!(
            "{:>10}  {:>17.1}%  {:>17.1}%",
            condition.label(),
            cells[0],
            cells[1]
        );
    }
    println!("\nLateral mitigation collapses on ice — the paper's Table VIII finding.");
}
