//! Lateral (ALC) attack walkthrough: a dirty-road-patch style curvature
//! fault, with a step-by-step event log showing the drift, the warnings,
//! and how different interventions change the outcome.
//!
//! ```bash
//! cargo run --release --example lateral_attack
//! ```

use openadas::attack::{FaultInjector, FaultSpec, FaultType};
use openadas::core::{InterventionConfig, Platform, PlatformConfig, RunEnd2};
use openadas::scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use openadas::simulator::{DeterministicRng, TraceRecorder};

fn run_and_narrate(label: &str, iv: InterventionConfig) {
    let mut rng = DeterministicRng::for_run(42, 0, 0, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
    let injector = FaultInjector::new(FaultSpec::new(
        FaultType::DesiredCurvature,
        setup.patch_start_s,
    ));
    let mut platform = Platform::new(
        &setup,
        PlatformConfig::with_interventions(iv),
        injector,
        None,
        &mut rng,
    );
    platform.attach_trace(TraceRecorder::new());
    loop {
        let _ = platform.step();
        if let RunEnd2::Yes(_) = platform.finished() {
            break;
        }
    }
    let record = platform.record();
    let trace = platform.take_trace().expect("attached");

    println!("\n=== {label} ===");
    if let Some(t) = record.fault_start {
        println!("t={t:6.2}s  ego crosses the road patch — path output poisoned");
    }
    // First moments of interest from the trace.
    let mut drift_logged = false;
    let mut steer_logged = false;
    let mut brake_logged = false;
    let mut aeb_logged = false;
    for s in trace.samples() {
        if !drift_logged && record.fault_start.is_some_and(|f| s.time > f) && s.ego_d.abs() > 0.5 {
            println!("t={:6.2}s  drifted {:.2} m from the lane center", s.time, s.ego_d);
            drift_logged = true;
        }
        if !steer_logged && s.driver_steering {
            println!("t={:6.2}s  driver steers back toward the center", s.time);
            steer_logged = true;
        }
        if !brake_logged && s.driver_braking {
            println!("t={:6.2}s  driver applies the emergency brake", s.time);
            brake_logged = true;
        }
        if !aeb_logged && s.aeb_active {
            println!("t={:6.2}s  AEB engages (v = {:.1} m/s)", s.time, s.ego_v);
            aeb_logged = true;
        }
    }
    match (record.accident, record.accident_time) {
        (Some(kind), Some(t)) => println!("t={t:6.2}s  ACCIDENT: {kind}"),
        _ => println!("outcome: no accident — attack window survived"),
    }
}

fn main() {
    println!("Curvature (ALC) attack under three intervention configurations.");
    run_and_narrate("no interventions", InterventionConfig::none());
    run_and_narrate("driver only (2.5 s reaction)", InterventionConfig::driver_only());
    run_and_narrate(
        "driver + safety check + AEB (independent)",
        InterventionConfig::driver_check_aeb_independent(),
    );
}
