//! Quickstart: assemble the closed-loop platform, run one benign scenario
//! and one attacked scenario, and print what happened.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use openadas::attack::{FaultInjector, FaultSpec, FaultType};
use openadas::core::{InterventionConfig, Platform, PlatformConfig};
use openadas::scenarios::{InitialPosition, ScenarioId, ScenarioSetup};
use openadas::simulator::DeterministicRng;

fn main() {
    // 1. Build a driving scenario: S1 (lead cruising at 30 mph) with the
    //    ego starting 60 m behind at 50 mph on a straight highway.
    let mut rng = DeterministicRng::for_run(42, 0, 0, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
    println!("scenario: {} — {}", setup.id, setup.id.description());

    // 2. Benign run: no faults, no interventions.
    let mut benign = Platform::new(
        &setup,
        PlatformConfig::default(),
        FaultInjector::disabled(),
        None,
        &mut rng.split(1),
    );
    let record = benign.run();
    println!("\n— benign run —");
    println!("  accident:            {:?}", record.accident);
    println!("  stable following:    {:.1} m", record.avg_following_distance);
    println!("  hardest brake:       {:.1} %", record.max_brake * 100.0);
    println!("  min TTC:             {:.2} s", record.min_ttc);

    // 3. The same scenario under the adversarial-patch (relative distance)
    //    attack, still without safety interventions.
    let injector = FaultInjector::new(FaultSpec::new(
        FaultType::RelativeDistance,
        setup.patch_start_s,
    ));
    let mut attacked = Platform::new(
        &setup,
        PlatformConfig::default(),
        injector,
        None,
        &mut rng.split(2),
    );
    let record = attacked.run();
    println!("\n— RD attack, no interventions —");
    println!("  fault active from:   {:?} s", record.fault_start);
    println!("  accident:            {:?} at {:?} s", record.accident, record.accident_time);

    // 4. Same attack, but with AEB on an independent sensor.
    let injector = FaultInjector::new(FaultSpec::new(
        FaultType::RelativeDistance,
        setup.patch_start_s,
    ));
    let config =
        PlatformConfig::with_interventions(InterventionConfig::aeb_independent_only());
    let mut protected = Platform::new(&setup, config, injector, None, &mut rng.split(3));
    let record = protected.run();
    println!("\n— RD attack + AEB (independent sensor) —");
    println!("  accident:            {:?}", record.accident);
    println!("  AEB first braked at: {:?} s", record.aeb_trigger);
    println!(
        "  outcome:             {}",
        if record.prevented() {
            "accident prevented"
        } else {
            "accident NOT prevented"
        }
    );
}
