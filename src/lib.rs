//! # openadas
//!
//! Façade crate re-exporting the full platform: a Rust reproduction of
//! *"Safety Interventions against Adversarial Patches in an Open-Source
//! Driver Assistance System"* (DSN 2025).
//!
//! See `README.md` for the architecture overview and `DESIGN.md` for the
//! system inventory and per-experiment index.

#![forbid(unsafe_code)]

pub use adas_attack as attack;
pub use adas_control as control;
pub use adas_core as core;
pub use adas_ml as ml;
pub use adas_perception as perception;
pub use adas_safety as safety;
pub use adas_scenarios as scenarios;
pub use adas_simulator as simulator;
