//! The batched SoA executor's contract: per-run outcomes are
//! **bit-identical** to the scalar path at every batch width and worker
//! count. The full campaign grid (S1–S6 × both spawn positions) runs for
//! every fault type at `width ∈ {1, 4, 32}` × `ADAS_THREADS ∈ {1, 4}`,
//! with and without the ML mitigation, and persisted traces captured
//! through the batched path replay bit-exactly.

use std::sync::{Arc, Mutex, MutexGuard};

use openadas::attack::FaultType;
use openadas::core::{
    collect_training_data, replay_trace, run_campaign_traced_with_width, run_campaign_with_width,
    InterventionConfig, PlatformConfig, TraceSink,
};
use openadas::ml::{LstmPredictor, ModelSpec, TrainConfig};
use adas_recorder::{RecordMode, Trace, TraceMode, TracePolicy};

/// Serialises tests that set `ADAS_THREADS`: the worker count is read per
/// dispatch, so a concurrent test could otherwise observe a torn value.
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn threads_guard(n: usize) -> MutexGuard<'static, ()> {
    let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("ADAS_THREADS", n.to_string());
    guard
}

const WIDTHS: [usize; 3] = [1, 4, 32];
const THREADS: [usize; 2] = [1, 4];

fn fault_label(fault: Option<FaultType>) -> String {
    fault.map_or("Benign".to_owned(), |f| format!("{f:?}"))
}

#[test]
fn campaigns_are_bit_identical_across_widths_and_threads() {
    let mut cfg = PlatformConfig::with_interventions(InterventionConfig::driver_and_check());
    cfg.max_steps = 3_000;
    for fault in [
        None,
        Some(FaultType::RelativeDistance),
        Some(FaultType::DesiredCurvature),
        Some(FaultType::Mixed),
    ] {
        let baseline = {
            let _env = threads_guard(1);
            run_campaign_with_width(fault, &cfg, None, 2025, 1, 1)
        };
        assert_eq!(baseline.len(), 12, "full S1–S6 × Near/Far grid");
        for threads in THREADS {
            let _env = threads_guard(threads);
            for width in WIDTHS {
                let batched = run_campaign_with_width(fault, &cfg, None, 2025, 1, width);
                assert_eq!(
                    format!("{baseline:?}"),
                    format!("{batched:?}"),
                    "fault={} width={width} threads={threads}",
                    fault_label(fault),
                );
            }
        }
    }
}

fn tiny_trained_model() -> Arc<LstmPredictor> {
    let data = collect_training_data(3, 1, 60);
    let mut model = LstmPredictor::new(ModelSpec {
        hidden1: 16,
        hidden2: 8,
        seed: 9,
    });
    let _ = openadas::ml::train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
    );
    Arc::new(model)
}

#[test]
fn ml_campaigns_are_bit_identical_across_widths_and_threads() {
    // The ML row drives the batched LSTM forward: lanes start and retire
    // at different ticks, so this also covers panel refill mid-flight.
    let model = tiny_trained_model();
    let mut cfg = PlatformConfig::with_interventions(InterventionConfig::ml_only());
    cfg.max_steps = 600;
    let fault = Some(FaultType::Mixed);
    let baseline = {
        let _env = threads_guard(1);
        run_campaign_with_width(fault, &cfg, Some(&model), 2025, 1, 1)
    };
    for threads in THREADS {
        let _env = threads_guard(threads);
        for width in WIDTHS {
            let batched = run_campaign_with_width(fault, &cfg, Some(&model), 2025, 1, width);
            assert_eq!(
                format!("{baseline:?}"),
                format!("{batched:?}"),
                "ml width={width} threads={threads}"
            );
        }
    }
}

#[test]
fn traces_captured_through_the_batched_path_replay_bit_exactly() {
    // Golden-trace check: capture the full grid through the lockstep
    // executor, then replay every persisted trace scalar — the replay
    // must diverge nowhere. This ties the batched capture to the flight
    // recorder's bit-exact replay guarantee.
    let mut cfg = PlatformConfig::with_interventions(InterventionConfig::driver_and_check());
    cfg.max_steps = 1_500;
    let dir = std::env::temp_dir().join(format!("adas-batch-golden-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let sink = TraceSink::new(TracePolicy {
        mode: TraceMode::All,
        dir: dir.clone(),
        record_mode: RecordMode::Full,
    });
    let fault = Some(FaultType::DesiredCurvature);
    let records = {
        let _env = threads_guard(4);
        run_campaign_traced_with_width(fault, &cfg, None, 0, 2025, 1, &sink, 4)
    };
    assert_eq!(records.len(), 12);
    assert_eq!(sink.recorded(), 12);
    assert!(sink.persisted() > 0, "TraceMode::All must persist");

    let mut replayed = 0;
    for entry in std::fs::read_dir(&dir).expect("trace dir exists") {
        let path = entry.expect("dir entry").path();
        let trace = Trace::load(&path).expect("persisted trace loads");
        let report = replay_trace(&trace, None, None).expect("trace replays");
        assert!(
            report.report.is_identical(),
            "replay diverged for {}",
            path.display()
        );
        replayed += 1;
    }
    assert_eq!(replayed as u64, sink.persisted());
    let _ = std::fs::remove_dir_all(&dir);
}
