//! Cross-crate integration tests: the full closed loop from scenario
//! construction through perception, attack, control, interventions,
//! physics, and outcome classification.

use openadas::attack::{FaultInjector, FaultSpec, FaultType};
use openadas::core::{run_single, InterventionConfig, Platform, PlatformConfig, RunId};
use openadas::scenarios::{AccidentKind, InitialPosition, ScenarioId, ScenarioSetup};
use openadas::simulator::DeterministicRng;

fn id(scenario: ScenarioId, position: InitialPosition, repetition: u32) -> RunId {
    RunId {
        scenario,
        position,
        repetition,
    }
}

#[test]
fn benign_runs_are_accident_free_in_cruise_scenarios() {
    for scenario in [ScenarioId::S1, ScenarioId::S2, ScenarioId::S6] {
        for position in InitialPosition::ALL {
            let rec = run_single(
                id(scenario, position, 0),
                None,
                &PlatformConfig::default(),
                None,
                1,
            );
            assert!(
                rec.accident.is_none(),
                "{scenario} {position:?} benign must not crash: {rec:?}"
            );
        }
    }
}

#[test]
fn benign_following_distance_matches_paper_band() {
    let rec = run_single(
        id(ScenarioId::S1, InitialPosition::Near, 0),
        None,
        &PlatformConfig::default(),
        None,
        1,
    );
    assert!(
        (20.0..45.0).contains(&rec.avg_following_distance),
        "following distance {}",
        rec.avg_following_distance
    );
}

#[test]
fn rd_attack_causes_forward_collision_without_interventions() {
    let rec = run_single(
        id(ScenarioId::S1, InitialPosition::Near, 0),
        Some(FaultType::RelativeDistance),
        &PlatformConfig::default(),
        None,
        1,
    );
    assert_eq!(rec.accident, Some(AccidentKind::ForwardCollision), "{rec:?}");
    assert!(rec.fault_start.is_some());
}

#[test]
fn curvature_attack_causes_lane_violation_without_interventions() {
    let rec = run_single(
        id(ScenarioId::S1, InitialPosition::Near, 0),
        Some(FaultType::DesiredCurvature),
        &PlatformConfig::default(),
        None,
        1,
    );
    assert_eq!(rec.accident, Some(AccidentKind::LaneViolation), "{rec:?}");
}

#[test]
fn aeb_independent_prevents_rd_attack_collision() {
    let cfg = PlatformConfig::with_interventions(InterventionConfig::aeb_independent_only());
    for rep in 0..3 {
        let rec = run_single(
            id(ScenarioId::S1, InitialPosition::Near, rep),
            Some(FaultType::RelativeDistance),
            &cfg,
            None,
            1,
        );
        assert!(rec.prevented(), "rep {rep}: {rec:?}");
        assert!(rec.aeb_trigger.is_some());
    }
}

#[test]
fn aeb_compromised_fails_where_independent_succeeds() {
    let mut prevented_indep = 0;
    let mut prevented_comp = 0;
    for rep in 0..4 {
        let run = id(ScenarioId::S1, InitialPosition::Near, rep);
        let indep = run_single(
            run,
            Some(FaultType::RelativeDistance),
            &PlatformConfig::with_interventions(InterventionConfig::aeb_independent_only()),
            None,
            1,
        );
        let comp = run_single(
            run,
            Some(FaultType::RelativeDistance),
            &PlatformConfig::with_interventions(InterventionConfig::aeb_compromised_only()),
            None,
            1,
        );
        prevented_indep += u32::from(indep.prevented());
        prevented_comp += u32::from(comp.prevented());
    }
    assert!(
        prevented_indep > prevented_comp,
        "independent sensor must outperform compromised ({prevented_indep} vs {prevented_comp})"
    );
}

#[test]
fn runs_are_bit_deterministic() {
    let run = id(ScenarioId::S4, InitialPosition::Far, 2);
    let cfg = PlatformConfig::with_interventions(InterventionConfig::driver_and_check());
    let a = run_single(run, Some(FaultType::Mixed), &cfg, None, 99);
    let b = run_single(run, Some(FaultType::Mixed), &cfg, None, 99);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn different_seeds_differ() {
    let run = id(ScenarioId::S1, InitialPosition::Near, 0);
    let cfg = PlatformConfig::default();
    let a = run_single(run, Some(FaultType::RelativeDistance), &cfg, None, 1);
    let b = run_single(run, Some(FaultType::RelativeDistance), &cfg, None, 2);
    // Same qualitative outcome, different numerics.
    assert_ne!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn fig6_failure_chain_reproduces() {
    // The Fig. 6 chain: fault → approach on tampered input → close-range
    // blindness → acceleration → collision. Verify the perceived lead
    // disappears below the blind range while a true lead is inches away.
    let mut rng = DeterministicRng::for_run(2025, 0, 0, 0);
    let setup = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut rng);
    let injector = FaultInjector::new(FaultSpec::new(
        FaultType::RelativeDistance,
        setup.patch_start_s,
    ));
    let mut platform = Platform::new(
        &setup,
        PlatformConfig::default(),
        injector,
        None,
        &mut rng,
    );
    let mut saw_blindness = false;
    loop {
        let frame = platform.step();
        let truth = platform.world().lead_observation();
        if let Some(obs) = truth {
            if obs.distance < 1.9 && frame.lead.is_none() {
                saw_blindness = true;
            }
        }
        if let openadas::core::RunEnd2::Yes(_) = platform.finished() {
            break;
        }
    }
    let rec = platform.record();
    assert!(saw_blindness, "close-range blindness must occur");
    assert_eq!(rec.accident, Some(AccidentKind::ForwardCollision));
}
