//! Determinism guarantees: every published table must be bit-reproducible
//! across machines, thread counts, and repeated invocations.

use openadas::attack::FaultType;
use openadas::core::{run_campaign, run_single, InterventionConfig, PlatformConfig, RunId};
use openadas::scenarios::{InitialPosition, ScenarioId};
use openadas::simulator::DeterministicRng;

#[test]
fn campaigns_reproduce_bit_for_bit() {
    let mut cfg = PlatformConfig::with_interventions(InterventionConfig::driver_and_check());
    cfg.max_steps = 3_000;
    let a = run_campaign(Some(FaultType::Mixed), &cfg, None, 1234, 2);
    let b = run_campaign(Some(FaultType::Mixed), &cfg, None, 1234, 2);
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn run_rng_streams_are_decoupled_from_order() {
    // Running repetition 3 directly must equal running it after 0..2.
    let cfg = PlatformConfig::default();
    let direct = run_single(
        RunId {
            scenario: ScenarioId::S2,
            position: InitialPosition::Far,
            repetition: 3,
        },
        Some(FaultType::RelativeDistance),
        &cfg,
        None,
        77,
    );
    for rep in 0..3 {
        let _ = run_single(
            RunId {
                scenario: ScenarioId::S2,
                position: InitialPosition::Far,
                repetition: rep,
            },
            Some(FaultType::RelativeDistance),
            &cfg,
            None,
            77,
        );
    }
    let after = run_single(
        RunId {
            scenario: ScenarioId::S2,
            position: InitialPosition::Far,
            repetition: 3,
        },
        Some(FaultType::RelativeDistance),
        &cfg,
        None,
        77,
    );
    assert_eq!(format!("{direct:?}"), format!("{after:?}"));
}

#[test]
fn rng_coordinates_are_pairwise_distinct() {
    // 6 scenarios × 2 positions × 10 reps must yield distinct streams.
    let mut firsts = std::collections::HashSet::new();
    for s in 0..6u64 {
        for p in 0..2u64 {
            for r in 0..10u64 {
                let mut rng = DeterministicRng::for_run(2025, s, p, r);
                assert!(
                    firsts.insert(rng.next_u64()),
                    "collision at ({s},{p},{r})"
                );
            }
        }
    }
}

#[test]
fn scenario_jitter_is_seed_scoped() {
    use openadas::scenarios::ScenarioSetup;
    // Different campaign seeds must produce different scenario jitter.
    let mut a = DeterministicRng::for_run(1, 0, 0, 0);
    let mut b = DeterministicRng::for_run(2, 0, 0, 0);
    let sa = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut a);
    let sb = ScenarioSetup::build(ScenarioId::S1, InitialPosition::Near, &mut b);
    assert_ne!(sa.npcs[0].state().s, sb.npcs[0].state().s);
    assert_ne!(sa.patch_start_s, sb.patch_start_s);
}

#[test]
fn fuzz_sessions_reproduce_bit_for_bit() {
    // The fuzzer inherits the platform's determinism guarantee: the same
    // config must yield the same corpus, coverage curve, and findings.
    // (Thread-count invariance is exercised by the CI smoke job, which
    // runs the CLI under an explicit ADAS_THREADS; within one process the
    // worker pool is already exercised by the campaign tests above.)
    use adas_fuzz::FuzzConfig;
    let cfg = FuzzConfig {
        seed: 4242,
        max_runs: 40,
        batch: 8,
        max_secs: None,
        shrink_steps: 4,
    };
    let a = adas_fuzz::fuzz(&cfg);
    let b = adas_fuzz::fuzz(&cfg);
    assert_eq!(a.runs, b.runs);
    assert_eq!(a.coverage_growth, b.coverage_growth);
    assert_eq!(format!("{:?}", a.corpus), format!("{:?}", b.corpus));
    assert_eq!(format!("{:?}", a.findings), format!("{:?}", b.findings));
}
