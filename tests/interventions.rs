//! Integration tests focused on the safety interventions and their
//! interactions — the paper's central subject.

use openadas::attack::FaultType;
use openadas::core::{
    run_campaign, run_single, CellStats, InterventionConfig, PlatformConfig, RunId,
};
use openadas::scenarios::{InitialPosition, ScenarioId};

fn small_campaign(fault: Option<FaultType>, iv: InterventionConfig, seed: u64) -> CellStats {
    let cfg = PlatformConfig::with_interventions(iv);
    let records = run_campaign(fault, &cfg, None, seed, 2);
    CellStats::from_records(records.iter().map(|(_, r)| r))
}

#[test]
fn interventions_strictly_improve_on_nothing() {
    for fault in FaultType::ALL {
        let none = small_campaign(Some(fault), InterventionConfig::none(), 5);
        let full = small_campaign(
            Some(fault),
            InterventionConfig::driver_check_aeb_independent(),
            5,
        );
        assert!(
            full.prevented_pct > none.prevented_pct,
            "{fault}: {:.1}% vs {:.1}%",
            full.prevented_pct,
            none.prevented_pct
        );
    }
}

#[test]
fn no_intervention_means_no_prevention_under_attack() {
    for fault in FaultType::ALL {
        let stats = small_campaign(Some(fault), InterventionConfig::none(), 5);
        assert!(
            stats.prevented_pct < 25.0,
            "{fault}: unexpected prevention {:.1}%",
            stats.prevented_pct
        );
        assert!(stats.aeb_trigger_rate == 0.0);
        assert!(stats.driver_brake_trigger_rate == 0.0);
    }
}

#[test]
fn rd_attack_yields_mostly_forward_collisions() {
    let stats = small_campaign(
        Some(FaultType::RelativeDistance),
        InterventionConfig::none(),
        5,
    );
    assert!(stats.a1_pct > 60.0, "A1 {:.1}%", stats.a1_pct);
    assert!(stats.a1_pct > stats.a2_pct);
}

#[test]
fn curvature_attack_yields_lane_violations() {
    let stats = small_campaign(
        Some(FaultType::DesiredCurvature),
        InterventionConfig::none(),
        5,
    );
    assert!(stats.a2_pct > 60.0, "A2 {:.1}%", stats.a2_pct);
    assert!(stats.a1_pct < stats.a2_pct);
}

#[test]
fn faster_reaction_prevents_more() {
    // Table VII's monotone trend, coarse-grained: 1.0 s vs 3.5 s drivers.
    let mut alert_total = 0.0;
    let mut sluggish_total = 0.0;
    for fault in FaultType::ALL {
        let mut alert = InterventionConfig::driver_only();
        alert.driver_reaction_time = 1.0;
        let mut sluggish = InterventionConfig::driver_only();
        sluggish.driver_reaction_time = 3.5;
        alert_total += small_campaign(Some(fault), alert, 5).prevented_pct;
        sluggish_total += small_campaign(Some(fault), sluggish, 5).prevented_pct;
    }
    assert!(
        alert_total > sluggish_total,
        "alert {alert_total:.1} vs sluggish {sluggish_total:.1}"
    );
}

#[test]
fn icy_road_hurts_lateral_mitigation() {
    use openadas::simulator::FrictionCondition;
    let mut dry_cfg = PlatformConfig::with_interventions(
        InterventionConfig::driver_check_aeb_compromised(),
    );
    dry_cfg.friction = FrictionCondition::Default;
    let mut icy_cfg = dry_cfg;
    icy_cfg.friction = FrictionCondition::Off75;

    let dry = run_campaign(Some(FaultType::DesiredCurvature), &dry_cfg, None, 5, 2);
    let icy = run_campaign(Some(FaultType::DesiredCurvature), &icy_cfg, None, 5, 2);
    let dry_prev = CellStats::from_records(dry.iter().map(|(_, r)| r)).prevented_pct;
    let icy_prev = CellStats::from_records(icy.iter().map(|(_, r)| r)).prevented_pct;
    assert!(
        dry_prev >= icy_prev,
        "dry {dry_prev:.1}% should be ≥ icy {icy_prev:.1}%"
    );
}

#[test]
fn driver_trigger_times_respect_reaction_delay() {
    // The recorded driver trigger is the *condition* time; braking starts a
    // reaction time later. The trigger must precede any accident by less
    // than the full run, and mitigation time must be non-negative.
    let rec = run_single(
        RunId {
            scenario: ScenarioId::S1,
            position: InitialPosition::Near,
            repetition: 1,
        },
        Some(FaultType::RelativeDistance),
        &PlatformConfig::with_interventions(InterventionConfig::driver_only()),
        None,
        5,
    );
    if let Some(mt) = rec.mitigation_time(rec.driver_brake_trigger) {
        assert!(mt >= 0.0);
        assert!(mt < 100.0);
    }
}

#[test]
fn safety_check_row_differs_from_driver_only() {
    // The PANDA clamp limits the ADAS's own late braking, so the two
    // configurations must not be numerically identical.
    let run = RunId {
        scenario: ScenarioId::S4,
        position: InitialPosition::Near,
        repetition: 0,
    };
    let a = run_single(
        run,
        Some(FaultType::RelativeDistance),
        &PlatformConfig::with_interventions(InterventionConfig::driver_and_check()),
        None,
        5,
    );
    let b = run_single(
        run,
        Some(FaultType::RelativeDistance),
        &PlatformConfig::with_interventions(InterventionConfig::driver_only()),
        None,
        5,
    );
    assert_ne!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn cell_stats_outcomes_partition() {
    for fault in FaultType::ALL {
        let stats = small_campaign(Some(fault), InterventionConfig::driver_and_check(), 11);
        let total = stats.a1_pct + stats.a2_pct + stats.prevented_pct;
        assert!((total - 100.0).abs() < 1e-9, "{fault}: {total}");
    }
}
