//! Differential harness for the mitigation baselines: every strategy
//! behind the `ADAS_MITIGATION` seam (CUSUM recovery, uncertainty
//! ensemble, masked-view check) must produce **bit-identical** per-run
//! outcomes across worker counts, lockstep batch widths, and the
//! direct-vs-over-the-wire serving path. A mitigation that is only
//! "statistically similar" across execution modes cannot back a Table
//! VII-style comparison — the grid would measure the executor, not the
//! defence.

use std::sync::{Arc, Mutex, MutexGuard};

use openadas::attack::FaultType;
use openadas::core::job::CellSpec;
use openadas::core::{
    collect_training_data, run_campaign_with_width, run_single, ArtifactCache, CampaignSpec,
    CellStats, InterventionConfig, MitigationKind, PlatformConfig,
};
use openadas::ml::{LstmPredictor, ModelSpec, TrainConfig};
use adas_serve::{Client, JobState, Server, ServerConfig};

/// Serialises tests that set `ADAS_THREADS` (read per dispatch, so a
/// concurrent test could observe a torn value).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn threads_guard(n: usize) -> MutexGuard<'static, ()> {
    let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("ADAS_THREADS", n.to_string());
    guard
}

const WIDTHS: [usize; 3] = [1, 4, 32];
const THREADS: [usize; 2] = [1, 4];

/// Small-but-real architecture shared by the direct and the served side
/// of the wire comparison (the server trains its resident model at this
/// spec, the reference path trains the identical weights itself).
const TINY_SPEC: ModelSpec = ModelSpec {
    hidden1: 16,
    hidden2: 8,
    seed: 9,
};

fn tiny_trained_model() -> Arc<LstmPredictor> {
    let data = collect_training_data(3, 1, 60);
    let mut model = LstmPredictor::new(TINY_SPEC);
    let _ = openadas::ml::train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
    );
    Arc::new(model)
}

#[test]
fn every_mitigation_is_bit_identical_across_widths_and_threads() {
    // The views-based strategies drive an M-lane panel *inside* each run
    // while the lockstep executor batches *across* runs — this asserts the
    // two batching levels compose without perturbing a single bit.
    let model = tiny_trained_model();
    let fault = Some(FaultType::Mixed);
    for kind in MitigationKind::ALL {
        let mut cfg = PlatformConfig::with_interventions(
            InterventionConfig::ml_only().with_mitigation(kind),
        );
        cfg.max_steps = 600;
        let baseline = {
            let _env = threads_guard(1);
            run_campaign_with_width(fault, &cfg, Some(&model), 2025, 1, 1)
        };
        assert_eq!(baseline.len(), 12, "full S1–S6 × Near/Far grid");
        for threads in THREADS {
            let _env = threads_guard(threads);
            for width in WIDTHS {
                let batched = run_campaign_with_width(fault, &cfg, Some(&model), 2025, 1, width);
                assert_eq!(
                    format!("{baseline:?}"),
                    format!("{batched:?}"),
                    "mitigation={} width={width} threads={threads}",
                    kind.name(),
                );
            }
        }
    }
}

#[test]
fn mitigations_differ_from_each_other_under_attack() {
    // Sanity guard on the harness itself: if all three strategies produced
    // identical grids the equivalence assertions above would be vacuous
    // (e.g. the seam silently ignoring the selector).
    let model = tiny_trained_model();
    let fault = Some(FaultType::Mixed);
    let mut grids = Vec::new();
    for kind in MitigationKind::ALL {
        let mut cfg = PlatformConfig::with_interventions(
            InterventionConfig::ml_only().with_mitigation(kind),
        );
        cfg.max_steps = 600;
        let _env = threads_guard(1);
        grids.push(format!(
            "{:?}",
            run_campaign_with_width(fault, &cfg, Some(&model), 2025, 1, 1)
        ));
    }
    assert_ne!(grids[0], grids[1], "cusum vs ensemble must diverge");
    assert_ne!(grids[0], grids[2], "cusum vs maskcheck must diverge");
}

/// One campaign cell per mitigation strategy (all with `ml` engaged, so
/// the server resolves its resident trained model for the seed).
fn mitigation_spec() -> CampaignSpec {
    CampaignSpec {
        campaign_seed: 8_082_025,
        repetitions: 1,
        max_steps: 900,
        scenario_mask: 0b00_1001, // S1 + S4
        attack: openadas::attack::AttackScheduler::Immediate,
        cells: vec![
            CellSpec {
                fault: Some(FaultType::RelativeDistance),
                interventions: InterventionConfig::ml_only(),
            },
            CellSpec {
                fault: Some(FaultType::RelativeDistance),
                interventions: InterventionConfig::ensemble_only(),
            },
            CellSpec {
                fault: Some(FaultType::Mixed),
                interventions: InterventionConfig::maskcheck_only(),
            },
        ],
    }
}

/// The reference: the same grid evaluated in-process through
/// `run_single`, with weights trained exactly as the daemon trains its
/// resident model (same seed, same spec, same pipeline).
fn direct_cell_bytes(spec: &CampaignSpec) -> Vec<Vec<u8>> {
    let model = Arc::new(adas_bench::trained_baseline_cached(
        &ArtifactCache::disabled(),
        spec.campaign_seed,
        TINY_SPEC,
    ));
    let ids = spec.run_ids();
    spec.cells
        .iter()
        .map(|cell| {
            let config = spec.config_for(cell);
            let records: Vec<_> = ids
                .iter()
                .map(|id| run_single(*id, cell.fault, &config, Some(&model), spec.campaign_seed))
                .collect();
            CellStats::from_records(&records).to_bytes()
        })
        .collect()
}

#[test]
fn mitigation_cells_bit_identical_over_the_wire() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let spec = mitigation_spec();
    let reference = direct_cell_bytes(&spec);

    for threads in ["1", "4"] {
        std::env::set_var("ADAS_THREADS", threads);
        let trace_dir =
            std::env::temp_dir().join(format!("adas-mitig-wire-{}", std::process::id()));
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 4,
            cache: ArtifactCache::disabled(),
            trace_dir,
            model_spec: TINY_SPEC,
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || server.run());

        let mut client = Client::connect(&addr).expect("connect");
        let result = client
            .run_campaign(&spec, |_, _| {})
            .expect("protocol ok")
            .expect("accepted");
        assert_eq!(result.state, JobState::Done);
        let wire: Vec<Vec<u8>> = result.cells.into_iter().map(|(_, s)| s.to_bytes()).collect();
        assert_eq!(
            wire, reference,
            "threads={threads}: served mitigation cells must be bit-identical to the direct run"
        );

        client.shutdown().expect("shutdown ack");
        handle.join().expect("join").expect("clean exit");
        std::env::remove_var("ADAS_THREADS");
    }
}
