//! Property suite for the view-based mitigation baselines.
//!
//! The load-bearing invariants behind the Table VII comparison:
//!
//! 1. the ensemble's disagreement statistic is **exactly** 0.0 under
//!    fault-free perception (delta-multiplicative jitter — not merely
//!    "small", bitwise zero, so the benign false-positive rate is zero by
//!    construction);
//! 2. the authority de-rate curve is monotone non-increasing and bounded
//!    in `[min_authority, 1]`;
//! 3. the masked-view check never latches attack evidence on unanimous
//!    views, and neither strategy ever activates on the benign S1–S6
//!    campaign grid.

use std::sync::Arc;

use openadas::attack::FaultType;
use openadas::core::{
    collect_training_data, run_campaign_with_width, InterventionConfig, PlatformConfig,
};
use openadas::ml::{
    ControlTarget, EnsembleConfig, EnsembleMitigator, LstmPredictor, MaskCheckConfig,
    MaskCheckMitigator, ModelSpec, PerceptionViews, StateFeatures, TrainConfig,
};
use openadas::simulator::DeterministicRng;
use proptest::prelude::*;

fn small_model() -> LstmPredictor {
    LstmPredictor::new(ModelSpec {
        hidden1: 8,
        hidden2: 4,
        seed: 2,
    })
}

/// *Benign* perception evidence: the attacked read equals the clean read
/// on both channels, everything else ranges freely.
fn benign_views(
    ego: f64,
    rd: Option<f64>,
    closing: f64,
    kappa: f64,
    heading: f64,
    accel: f64,
) -> PerceptionViews {
    PerceptionViews {
        features: StateFeatures {
            ego_speed: ego,
            lead_distance: rd.unwrap_or(f64::INFINITY),
            closing_speed: closing,
            left_line: 1.75,
            right_line: 1.75,
            curvature: kappa,
            heading,
            prev_accel: accel,
            prev_steer: 0.0,
        },
        clean_rd: rd,
        attacked_rd: rd,
        clean_kappa: kappa,
        attacked_kappa: kappa,
        op_out: ControlTarget {
            accel,
            steer: heading,
        },
    }
}

proptest! {
    /// Fault-free cycles produce bitwise-zero ensemble disagreement — at
    /// any view count, any jitter seed, and any benign perception state.
    #[test]
    fn ensemble_disagreement_is_exactly_zero_on_benign_cycles(
        ego in 0.0..40.0f64,
        rd in prop::option::of(5.0..150.0f64),
        closing in -10.0..10.0f64,
        kappa in -0.01..0.01f64,
        heading in -0.2..0.2f64,
        accel in -3.0..2.0f64,
        m in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let views = benign_views(ego, rd, closing, kappa, heading, accel);
        let mut e = EnsembleMitigator::new(
            small_model(),
            EnsembleConfig::with_views(m),
            DeterministicRng::from_seed(seed),
        );
        for t in 0..40 {
            let out = e.update_views(&views, f64::from(t) * 0.01);
            prop_assert!(out.is_none(), "benign de-rate engaged at step {t}");
            prop_assert_eq!(e.disagreement(), 0.0, "disagreement at step {}", t);
        }
        prop_assert_eq!(e.activation_count(), 0);
    }

    /// The authority curve is monotone non-increasing and stays inside
    /// `[min_authority, 1]` for every disagreement value.
    #[test]
    fn ensemble_authority_is_monotone_and_bounded(
        a in 0.0..6.0f64,
        b in 0.0..6.0f64,
    ) {
        let cfg = EnsembleConfig::default();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let alpha_lo = cfg.authority(lo);
        let alpha_hi = cfg.authority(hi);
        prop_assert!(
            alpha_hi <= alpha_lo + 1e-12,
            "authority({hi}) = {alpha_hi} > authority({lo}) = {alpha_lo}"
        );
        for alpha in [alpha_lo, alpha_hi] {
            prop_assert!((cfg.min_authority..=1.0).contains(&alpha), "alpha = {alpha}");
        }
    }

    /// Unanimous (benign) views never accumulate an inconsistent-vote
    /// streak, so the masked-view latch cannot engage.
    #[test]
    fn maskcheck_never_latches_on_benign_cycles(
        ego in 0.0..40.0f64,
        rd in prop::option::of(5.0..150.0f64),
        closing in -10.0..10.0f64,
        kappa in -0.01..0.01f64,
        heading in -0.2..0.2f64,
        accel in -3.0..2.0f64,
        m in 1usize..12,
        seed in 0u64..1_000,
    ) {
        let views = benign_views(ego, rd, closing, kappa, heading, accel);
        let mut c = MaskCheckMitigator::new(
            small_model(),
            MaskCheckConfig::with_views(m),
            DeterministicRng::from_seed(seed),
        );
        for t in 0..40 {
            let out = c.update_views(&views, f64::from(t) * 0.01);
            prop_assert!(out.is_none(), "benign latch engaged at step {t}");
        }
        prop_assert!(!c.latched());
        prop_assert_eq!(c.activation_count(), 0);
    }
}

fn tiny_trained_model() -> Arc<LstmPredictor> {
    let data = collect_training_data(3, 1, 60);
    let mut model = LstmPredictor::new(ModelSpec {
        hidden1: 16,
        hidden2: 8,
        seed: 9,
    });
    let _ = openadas::ml::train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        },
    );
    Arc::new(model)
}

/// End-to-end benign false-positive check: across the full fault-free
/// S1–S6 × Near/Far grid, neither view-based strategy ever activates its
/// recovery mode. (An attacked sanity row confirms the same configs *do*
/// activate when there is something to catch.)
#[test]
fn view_mitigations_never_activate_on_the_benign_grid() {
    let model = tiny_trained_model();
    for iv in [
        InterventionConfig::ensemble_only(),
        InterventionConfig::maskcheck_only(),
    ] {
        let label = iv.label();
        let mut cfg = PlatformConfig::with_interventions(iv);
        cfg.max_steps = 600;
        let benign = run_campaign_with_width(None, &cfg, Some(&model), 2025, 1, 4);
        assert_eq!(benign.len(), 12, "full S1–S6 × Near/Far grid");
        for (id, record) in &benign {
            assert!(
                !record.ml_activated,
                "{label} activated on benign {id:?} — benign false positive"
            );
        }
        let attacked =
            run_campaign_with_width(Some(FaultType::RelativeDistance), &cfg, Some(&model), 2025, 1, 4);
        assert!(
            attacked.iter().any(|(_, r)| r.ml_activated),
            "{label} never activated under the RD patch — dead mitigation"
        );
    }
}
