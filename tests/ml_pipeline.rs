//! End-to-end test of the ML mitigation pipeline: collect fault-free
//! training data from the platform, train a small LSTM, and run it in the
//! closed loop against an attack (Algorithm 1).

use openadas::attack::FaultType;
use openadas::core::{
    collect_training_data, run_campaign, CellStats, InterventionConfig, PlatformConfig,
};
use openadas::ml::{train, LstmPredictor, ModelSpec, TrainConfig};
use std::sync::Arc;

fn tiny_trained_model() -> Arc<LstmPredictor> {
    let data = collect_training_data(3, 1, 60);
    assert!(!data.is_empty(), "training data collection failed");
    let mut model = LstmPredictor::new(ModelSpec {
        hidden1: 16,
        hidden2: 8,
        seed: 9,
    });
    let report = train(
        &mut model,
        &data,
        &TrainConfig {
            epochs: 2,
            ..TrainConfig::default()
        },
    );
    let losses = &report.epoch_loss;
    assert!(
        losses.last().unwrap() <= losses.first().unwrap(),
        "training must not diverge: {losses:?}"
    );
    Arc::new(model)
}

#[test]
fn ml_recovery_engages_under_attack_and_stays_quiet_benign() {
    let model = tiny_trained_model();
    let cfg = PlatformConfig::with_interventions(InterventionConfig::ml_only());

    // Benign: the CUSUM gate should rarely fire.
    let benign = run_campaign(None, &cfg, Some(&model), 21, 1);
    let benign_stats = CellStats::from_records(benign.iter().map(|(_, r)| r));

    // Attacked: recovery mode must engage in a majority of runs.
    let attacked = run_campaign(
        Some(FaultType::RelativeDistance),
        &cfg,
        Some(&model),
        21,
        1,
    );
    let attacked_stats = CellStats::from_records(attacked.iter().map(|(_, r)| r));

    assert!(
        attacked_stats.ml_trigger_rate > benign_stats.ml_trigger_rate,
        "attack must raise the ML trigger rate: {:.1}% vs {:.1}%",
        attacked_stats.ml_trigger_rate,
        benign_stats.ml_trigger_rate
    );
    assert!(
        attacked_stats.ml_trigger_rate > 50.0,
        "ML must engage under attack ({:.1}%)",
        attacked_stats.ml_trigger_rate
    );
}

#[test]
fn ml_mitigation_reduces_forward_collisions() {
    let model = tiny_trained_model();
    let none_cfg = PlatformConfig::with_interventions(InterventionConfig::none());
    let ml_cfg = PlatformConfig::with_interventions(InterventionConfig::ml_only());

    let unprotected = run_campaign(Some(FaultType::RelativeDistance), &none_cfg, None, 22, 1);
    let protected = run_campaign(
        Some(FaultType::RelativeDistance),
        &ml_cfg,
        Some(&model),
        22,
        1,
    );
    let a1_unprotected =
        CellStats::from_records(unprotected.iter().map(|(_, r)| r)).a1_pct;
    let a1_protected = CellStats::from_records(protected.iter().map(|(_, r)| r)).a1_pct;
    assert!(
        a1_protected < a1_unprotected,
        "ML must reduce forward collisions: {a1_protected:.1}% vs {a1_unprotected:.1}%"
    );
}
