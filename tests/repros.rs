//! Golden repro regression suite: every fuzzer finding committed under
//! `repros/` must still reproduce — the oracle violation fires, the
//! behavioural signature matches, and deterministic re-execution is
//! bit-identical to the flight-recorder trace stored next to it.
//!
//! A failure here means a code change altered the behaviour a shrunk
//! finding pinned down. If the change is intentional (e.g. a bug the
//! finding exposed was fixed), regenerate the affected repro with
//! `adas-fuzz run` or delete it with a note in EXPERIMENTS.md; silent
//! drift is exactly what this suite exists to catch.

use adas_fuzz::Repro;
use std::path::{Path, PathBuf};

fn repro_files() -> Vec<PathBuf> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("repros");
    let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .filter_map(Result::ok)
        .map(|entry| entry.path())
        .filter(|p| p.extension().is_some_and(|ext| ext == "toml"))
        .collect();
    files.sort();
    files
}

#[test]
fn committed_repros_exist() {
    assert!(
        !repro_files().is_empty(),
        "repros/ holds no .toml files — the golden findings are gone"
    );
}

#[test]
fn every_committed_repro_still_reproduces() {
    let files = repro_files();
    let mut failures = Vec::new();
    for path in &files {
        let repro = match Repro::load(path) {
            Ok(r) => r,
            Err(e) => {
                failures.push(format!("{}: unreadable: {e}", path.display()));
                continue;
            }
        };
        assert!(
            repro.trace_file.is_some(),
            "{}: committed repros must carry a trace for bit-exact replay",
            path.display()
        );
        let base = path.parent().expect("repro path has a parent");
        if let Err(e) = repro.verify(base) {
            failures.push(format!("{}: {e}", path.display()));
        }
    }
    assert!(
        failures.is_empty(),
        "{} of {} repros failed:\n{}",
        failures.len(),
        files.len(),
        failures.join("\n")
    );
}
