//! The scenario DSL's contract: the six golden `.scn` files under
//! `scenarios/builtin/` are a **lossless re-encoding** of the hard-coded
//! S1–S6 constructors. Every builtin loaded through the DSL catalog must
//! be bit-identical to [`ScenarioSetup::build_hardcoded`] — the setups
//! themselves, the RNG stream position after building, the run records,
//! the serialised traces (and therefore the content addresses the
//! artifact cache keys on) — at every `ADAS_THREADS` × batch width and
//! over the serve wire. Plus the context-aware attack scheduler's own
//! invariants: determinism, the one-shot latch, and the committed
//! schedule-dominance regression.

use std::sync::{Mutex, MutexGuard};

use openadas::attack::{
    AttackScheduler, ContextTrigger, FaultInjector, FaultSpec, FaultType,
};
use openadas::core::{
    campaign_run_ids, run_campaign_with_width, trace_header, CampaignSpec, CellStats,
    InterventionConfig, Platform, PlatformConfig, RunEnd, RunEnd2, RunId,
};
use openadas::core::job::CellSpec;
use openadas::scenarios::{InitialPosition, RunRecord, ScenarioId, ScenarioSetup};
use openadas::simulator::DeterministicRng;
use adas_recorder::{EndReason, RecordMode, Trace, TraceOutcome, TraceWriter};

/// Serialises tests that set `ADAS_THREADS` (process-global).
static ENV_LOCK: Mutex<()> = Mutex::new(());

fn threads_guard(n: usize) -> MutexGuard<'static, ()> {
    let guard = ENV_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    std::env::set_var("ADAS_THREADS", n.to_string());
    guard
}

/// A scenario constructor: the DSL catalog path or the legacy hard-coded
/// one. Both take the same per-run RNG and must consume it identically.
type Builder = fn(ScenarioId, InitialPosition, &mut DeterministicRng) -> ScenarioSetup;

const DSL: Builder = ScenarioSetup::build;
const HARDCODED: Builder = ScenarioSetup::build_hardcoded;

/// Mirrors the private `build_platform` wiring in `adas-core` with the
/// scenario constructor as a parameter, so the hard-coded path can be
/// driven through the exact same physics as the production (DSL) path.
fn platform_with(
    builder: Builder,
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    seed: u64,
) -> Platform {
    let mut rng = DeterministicRng::for_run(
        seed,
        id.scenario.index() as u64,
        id.position.index() as u64,
        u64::from(id.repetition),
    );
    let setup = builder(id.scenario, id.position, &mut rng);
    let injector = match fault {
        Some(ft) => FaultInjector::new(
            FaultSpec::new(ft, setup.patch_start_s).scheduled(config.attack),
        ),
        None => FaultInjector::disabled(),
    };
    Platform::new(&setup, *config, injector, None, &mut rng)
}

fn run_with(
    builder: Builder,
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    seed: u64,
) -> RunRecord {
    platform_with(builder, id, fault, config, seed).run()
}

/// Traced twin of [`run_with`]: same stepping, with a full-fidelity
/// recorder attached, sealing the trace exactly as `run_traced` does.
fn run_traced_with(
    builder: Builder,
    id: RunId,
    fault: Option<FaultType>,
    config: &PlatformConfig,
    seed: u64,
) -> (RunRecord, Trace) {
    let header = trace_header(id, fault, config, 0, seed);
    let mut platform = platform_with(builder, id, fault, config, seed);
    platform.attach_writer(TraceWriter::new(RecordMode::Full));
    let end = loop {
        let _ = platform.step();
        if let RunEnd2::Yes(end) = platform.finished() {
            break end;
        }
    };
    let record = platform.record();
    let writer = platform.take_writer().expect("writer was attached");
    let outcome = TraceOutcome {
        end: match end {
            RunEnd::TimeLimit => EndReason::TimeLimit,
            RunEnd::Accident => EndReason::Accident,
            RunEnd::Quiescent => EndReason::Quiescent,
        },
        accident: record.accident,
        accident_time: record.accident_time,
        fault_start: record.fault_start,
        min_ttc: record.min_ttc,
        min_lane_line_distance: record.min_lane_line_distance,
        steps: record.steps,
    };
    (record, writer.finish(header, outcome))
}

fn grid() -> Vec<RunId> {
    campaign_run_ids(1)
}

#[test]
fn dsl_setups_and_rng_streams_match_the_hardcoded_constructors() {
    // Structural equality is not enough: the DSL evaluator must also
    // consume the per-run RNG in exactly the legacy draw order, or every
    // downstream stream (mitigation jitter, future consumers) shifts.
    for scenario in ScenarioId::ALL {
        for position in InitialPosition::ALL {
            for repetition in 0..5u64 {
                let mut rng_dsl = DeterministicRng::for_run(
                    2025,
                    scenario.index() as u64,
                    position.index() as u64,
                    repetition,
                );
                let mut rng_hc = rng_dsl.clone();
                let dsl = DSL(scenario, position, &mut rng_dsl);
                let hardcoded = HARDCODED(scenario, position, &mut rng_hc);
                assert_eq!(
                    dsl, hardcoded,
                    "{scenario:?}/{position:?}/rep{repetition}: setup drifted"
                );
                let (a, b) = (rng_dsl.uniform(0.0, 1.0), rng_hc.uniform(0.0, 1.0));
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{scenario:?}/{position:?}/rep{repetition}: RNG stream out of step"
                );
            }
        }
    }
}

#[test]
fn dsl_runs_and_traces_are_bit_identical_to_hardcoded() {
    // Full closed-loop differential: records, serialised trace bytes, and
    // the content addresses the trace store / artifact cache key on.
    let mut config = PlatformConfig::with_interventions(InterventionConfig::driver_and_check());
    config.max_steps = 2_000;
    for id in grid() {
        for fault in [None, Some(FaultType::RelativeDistance)] {
            let (rec_dsl, trace_dsl) = run_traced_with(DSL, id, fault, &config, 2025);
            let (rec_hc, trace_hc) = run_traced_with(HARDCODED, id, fault, &config, 2025);
            assert_eq!(
                format!("{rec_dsl:?}"),
                format!("{rec_hc:?}"),
                "{id:?} fault={fault:?}: run record drifted"
            );
            assert_eq!(
                trace_dsl.to_bytes(),
                trace_hc.to_bytes(),
                "{id:?} fault={fault:?}: trace bytes drifted"
            );
            assert_eq!(trace_dsl.content_hex(), trace_hc.content_hex());
        }
    }
}

#[test]
fn scheduled_runs_from_dsl_match_hardcoded_too() {
    // The context-aware scheduler reads TTC/curvature from the world the
    // setup produced — equivalence must survive it as well.
    let mut config = PlatformConfig::with_interventions(InterventionConfig::driver_only());
    config.max_steps = 2_000;
    config.attack = AttackScheduler::Context(ContextTrigger::ttc(3.0));
    let fault = Some(FaultType::RelativeDistance);
    for id in grid() {
        let (rec_dsl, trace_dsl) = run_traced_with(DSL, id, fault, &config, 2025);
        let (rec_hc, trace_hc) = run_traced_with(HARDCODED, id, fault, &config, 2025);
        assert_eq!(format!("{rec_dsl:?}"), format!("{rec_hc:?}"), "{id:?}");
        assert_eq!(trace_dsl.to_bytes(), trace_hc.to_bytes(), "{id:?}");
    }
}

#[test]
fn dsl_campaigns_match_hardcoded_at_every_width_and_thread_count() {
    // The production campaign runner (scalar, batched SoA, any worker
    // count) builds scenarios through the DSL catalog; the reference here
    // is computed serially from the hard-coded constructors.
    let mut config = PlatformConfig::with_interventions(InterventionConfig::driver_and_check());
    config.max_steps = 1_500;
    let fault = Some(FaultType::DesiredCurvature);
    let reference: Vec<(RunId, RunRecord)> = grid()
        .into_iter()
        .map(|id| (id, run_with(HARDCODED, id, fault, &config, 2025)))
        .collect();
    for threads in [1, 4] {
        let _env = threads_guard(threads);
        for width in [1, 4, 32] {
            let campaign = run_campaign_with_width(fault, &config, None, 2025, 1, width);
            assert_eq!(
                format!("{reference:?}"),
                format!("{campaign:?}"),
                "threads={threads} width={width}: DSL campaign drifted from \
                 the hard-coded reference"
            );
        }
    }
}

#[test]
fn served_campaigns_match_hardcoded_direct_execution() {
    // The serve daemon compiles scenarios from the DSL catalog on its
    // executor thread; the reference is the hard-coded constructor run
    // in-process. One immediate spec, one context-scheduled spec — the
    // scheduler must cross the wire intact (spec v3).
    use adas_serve::{Client, JobState, Server, ServerConfig};

    let specs = [
        CampaignSpec {
            campaign_seed: 7_082_025,
            repetitions: 2,
            max_steps: 1_500,
            scenario_mask: 0b00_1001, // S1 + S4
            attack: AttackScheduler::Immediate,
            cells: vec![
                CellSpec {
                    fault: Some(FaultType::RelativeDistance),
                    interventions: InterventionConfig::none(),
                },
                CellSpec {
                    fault: Some(FaultType::RelativeDistance),
                    interventions: InterventionConfig::driver_and_check(),
                },
            ],
        },
        CampaignSpec {
            campaign_seed: 7_082_025,
            repetitions: 2,
            max_steps: 1_500,
            scenario_mask: 0b10_0001, // S1 + S6
            attack: AttackScheduler::Context(ContextTrigger::ttc(4.0)),
            cells: vec![CellSpec {
                fault: Some(FaultType::RelativeDistance),
                interventions: InterventionConfig::driver_only(),
            }],
        },
    ];
    let reference: Vec<Vec<Vec<u8>>> = specs
        .iter()
        .map(|spec| {
            let ids = spec.run_ids();
            spec.cells
                .iter()
                .map(|cell| {
                    let config = spec.config_for(cell);
                    let records: Vec<RunRecord> = ids
                        .iter()
                        .map(|id| run_with(HARDCODED, *id, cell.fault, &config, spec.campaign_seed))
                        .collect();
                    CellStats::from_records(&records).to_bytes()
                })
                .collect()
        })
        .collect();

    for threads in [1, 4] {
        let _env = threads_guard(threads);
        let trace_dir = std::env::temp_dir().join(format!(
            "adas-scn-equiv-{}-{threads}",
            std::process::id()
        ));
        let server = Server::bind(ServerConfig {
            addr: "127.0.0.1:0".into(),
            queue_capacity: 4,
            cache: openadas::core::ArtifactCache::disabled(),
            trace_dir,
            model_spec: openadas::ml::ModelSpec::default(),
        })
        .expect("bind ephemeral port");
        let addr = server.local_addr().expect("local addr").to_string();
        let handle = std::thread::spawn(move || server.run());

        for (spec, expected) in specs.iter().zip(&reference) {
            let mut client = Client::connect(&addr).expect("connect");
            let result = client
                .run_campaign(spec, |_, _| {})
                .expect("protocol ok")
                .expect("accepted");
            assert_eq!(result.state, JobState::Done);
            let wire: Vec<Vec<u8>> =
                result.cells.into_iter().map(|(_, s)| s.to_bytes()).collect();
            assert_eq!(
                &wire, expected,
                "threads={threads}: served cells drifted from the hard-coded \
                 direct reference (attack={:?})",
                spec.attack
            );
        }
        Client::connect(&addr)
            .expect("connect")
            .shutdown()
            .expect("shutdown ack");
        handle.join().expect("join").expect("clean exit");
    }
}

#[test]
fn scheduled_campaigns_are_deterministic_across_reruns_threads_and_widths() {
    let mut config = PlatformConfig::with_interventions(InterventionConfig::driver_only());
    config.max_steps = 1_500;
    config.attack = AttackScheduler::Context(ContextTrigger {
        ttc_below: Some(3.0),
        lane_excursion_above: None,
        curvature_above: Some(1.0e-3),
        arm_after: 5.0,
    });
    let fault = Some(FaultType::Mixed);
    let baseline = {
        let _env = threads_guard(1);
        run_campaign_with_width(fault, &config, None, 2025, 1, 1)
    };
    for threads in [1, 4] {
        let _env = threads_guard(threads);
        for width in [1, 4, 32] {
            let rerun = run_campaign_with_width(fault, &config, None, 2025, 1, width);
            assert_eq!(
                format!("{baseline:?}"),
                format!("{rerun:?}"),
                "threads={threads} width={width}: scheduled campaign not deterministic"
            );
        }
    }
}

#[test]
fn the_scheduler_latch_fires_at_most_once_per_run() {
    // One-shot latch property, observed through the flight recorder: the
    // per-sample `fault_active` flag may rise at most once per run (the
    // window closes when the attack duration expires — it never re-arms).
    let mut config = PlatformConfig::with_interventions(InterventionConfig::driver_only());
    config.max_steps = 2_500;
    config.attack = AttackScheduler::Context(ContextTrigger::ttc(4.0));
    let fault = Some(FaultType::RelativeDistance);
    let mut total_rising_edges = 0usize;
    for id in grid() {
        let (_, trace) = run_traced_with(DSL, id, fault, &config, 2025);
        let mut rising = 0usize;
        let mut prev = false;
        for sample in &trace.samples {
            if sample.fault_active && !prev {
                rising += 1;
            }
            prev = sample.fault_active;
        }
        assert!(
            rising <= 1,
            "{id:?}: scheduler latch re-armed ({rising} activations)"
        );
        total_rising_edges += rising;
    }
    assert!(
        total_rising_edges >= 1,
        "no run ever triggered the scheduled patch — latch property untested"
    );
}

#[test]
fn ttc_scheduling_strictly_dominates_the_immediate_patch_on_a_committed_scenario() {
    // Regression for the paper-level finding: a context-scheduled patch
    // (fire when TTC collapses) can strictly escalate severity over the
    // fixed-offset immediate patch. The fuzzer found such a case; it is
    // committed under repros/ and must keep reproducing.
    use adas_fuzz::{run_case, severity, OracleKind, Repro};

    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("repros");
    let mut dominance_repros = 0usize;
    for entry in std::fs::read_dir(&dir).expect("repros/ exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "toml") {
            continue;
        }
        let repro = Repro::load(&path).expect("repro parses");
        if repro.oracle != OracleKind::ScheduleDominance {
            continue;
        }
        dominance_repros += 1;
        assert!(
            repro.case.sched_ttc > 0.0,
            "{}: dominance repro must carry a TTC trigger",
            path.display()
        );
        let (scheduled, _) = run_case(&repro.case, repro.seed);
        let mut immediate_case = repro.case;
        immediate_case.sched_ttc = 0.0;
        let (immediate, _) = run_case(&immediate_case, repro.seed);
        assert!(
            severity(&scheduled) > severity(&immediate),
            "{}: scheduled severity {} must strictly dominate immediate {}",
            path.display(),
            severity(&scheduled),
            severity(&immediate)
        );
    }
    assert!(
        dominance_repros >= 1,
        "at least one schedule-dominance repro must stay committed"
    );
}
