//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Implements a small wall-clock benchmark runner with the same API shape
//! (`Criterion::bench_function`, benchmark groups, `iter`/`iter_batched`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros).
//! Timings are reported as mean wall-clock per iteration on stdout; there
//! is no statistical analysis, warm-up tuning, or HTML report.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimiser from deleting benchmarked
/// work (forwarding to `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortises setup cost (accepted for API fidelity; the
/// stand-in runs one setup per routine invocation regardless).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Per-benchmark measurement driver.
pub struct Bencher {
    samples: u64,
}

impl Bencher {
    fn measure<F: FnMut() -> Duration>(&mut self, mut once: F) -> (Duration, u64) {
        // One warm-up call, then `samples` measured calls.
        let _ = once();
        let mut total = Duration::ZERO;
        for _ in 0..self.samples {
            total += once();
        }
        (total, self.samples)
    }

    /// Benchmarks a routine.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let (total, n) = self.measure(|| {
            let t0 = Instant::now();
            black_box(routine());
            t0.elapsed()
        });
        report(total, n);
    }

    /// Benchmarks a routine with untimed per-iteration setup.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let (total, n) = self.measure(|| {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            t0.elapsed()
        });
        report(total, n);
    }
}

fn report(total: Duration, n: u64) {
    let per_iter = total.as_secs_f64() / n as f64;
    let formatted = if per_iter >= 1.0 {
        format!("{per_iter:.3} s")
    } else if per_iter >= 1e-3 {
        format!("{:.3} ms", per_iter * 1e3)
    } else if per_iter >= 1e-6 {
        format!("{:.3} µs", per_iter * 1e6)
    } else {
        format!("{:.1} ns", per_iter * 1e9)
    };
    println!("    time: {formatted}/iter over {n} iterations");
}

/// Top-level benchmark registry (stand-in for `criterion::Criterion`).
pub struct Criterion {
    sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of measured iterations per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n as u64;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench: {id}");
        let mut b = Bencher {
            samples: self.sample_size,
        };
        f(&mut b);
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            parent: self,
            sample_size: None,
        }
    }
}

/// A group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    sample_size: Option<u64>,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n as u64);
        self
    }

    /// Runs one named benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl std::fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("  bench: {id}");
        let mut b = Bencher {
            samples: self.sample_size.unwrap_or(self.parent.sample_size),
        };
        f(&mut b);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function (stand-in for
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares the benchmark entry point (stand-in for
/// `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
