//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the `proptest!` macro, `prop_assert!`/`prop_assert_eq!`, the
//! `Strategy` trait with range / bool / option / vec strategies, and
//! `ProptestConfig::with_cases`. Cases are generated from a deterministic
//! per-test RNG (seeded from the test name) rather than upstream
//! proptest's adaptive shrinking engine — failures therefore reproduce
//! exactly across runs, but are not shrunk to minimal counterexamples.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Number of cases to run per property (upstream default is 256; this
/// stand-in defaults lower because the simulator properties step real
/// dynamics inside each case).
pub const DEFAULT_CASES: u32 = 64;

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self {
            cases: DEFAULT_CASES,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Deterministic per-test generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Derives a generator from a test name (FNV-1a over the bytes).
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in [0, 1).
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in [lo, hi).
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        let span = (hi - lo) as u128;
        lo + (((self.next_u64() as u128) * span) >> 64) as usize
    }
}

/// Error type carried by `prop_assert!` failures (kept for API fidelity;
/// this stand-in panics directly instead of returning it).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// A value generator.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_possible_wrap)]
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = ((rng.next_u64() as u128) * span) >> 64;
                (self.start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(usize, u64, u32, i64, i32);

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// Uniform boolean strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct Any;

        /// Mirrors `proptest::bool::ANY`.
        pub const ANY: Any = Any;

        impl Strategy for Any {
            type Value = bool;
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }

    /// Option strategies.
    pub mod option {
        use crate::{Strategy, TestRng};

        /// 50/50 `None`/`Some(inner)` strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct OptionStrategy<S>(S);

        /// Mirrors `proptest::option::of`.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy(inner)
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.next_u64() & 1 == 1 {
                    Some(self.0.sample(rng))
                } else {
                    None
                }
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Length specification for [`vec`].
        #[derive(Debug, Clone, Copy)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                Self {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        impl From<Range<i32>> for SizeRange {
            fn from(r: Range<i32>) -> Self {
                Self {
                    lo: usize::try_from(r.start).unwrap_or(0),
                    hi: usize::try_from(r.end).unwrap_or(0),
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                Self { lo: n, hi: n + 1 }
            }
        }

        /// Vec-of-strategy strategy.
        #[derive(Debug, Clone, Copy)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Mirrors `proptest::collection::vec`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = rng.usize_in(self.size.lo, self.size.hi.max(self.size.lo + 1));
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy, TestRng,
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// Declares property tests: each function runs `cases` times with inputs
/// drawn from the given strategies.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut rng);)*
                    let run = || $body;
                    let _ = case;
                    run();
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respected(x in -4.0f64..9.0, n in 1usize..5) {
            prop_assert!((-4.0..9.0).contains(&x));
            prop_assert!((1..5).contains(&n));
        }

        #[test]
        fn vec_lengths(v in prop::collection::vec(0.0f64..1.0, 2..17)) {
            prop_assert!((2..17).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn options_mix(o in prop::option::of(0.0f64..1.0)) {
            if let Some(x) = o {
                prop_assert!((0.0..1.0).contains(&x));
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_cases_accepted(b in prop::bool::ANY) {
            let _ = b;
        }
    }
}
