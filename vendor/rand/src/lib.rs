//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a small, dependency-free implementation with the same module
//! layout (`rand::Rng`, `rand::SeedableRng`, `rand::rngs::StdRng`,
//! `rand::seq::SliceRandom`). The generator is SplitMix64 feeding
//! xoshiro256**, which is more than adequate for simulation noise and
//! weight initialisation. Streams are deterministic for a given seed but
//! are **not** bit-compatible with upstream `rand`; nothing in this
//! workspace depends on upstream streams.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Types that can construct themselves from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling support for `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value from the generator.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

/// Uniform range sampling support for `Rng::gen_range`.
pub trait SampleUniform: Sized + PartialOrd {
    /// Draws a value uniformly from `[lo, hi)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// The raw generator interface.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::draw(self)
    }

    /// Draws uniformly from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T
    where
        Self: Sized,
    {
        assert!(range.start < range.end, "cannot sample empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw returning `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        f64::draw(self) < p
    }
}

impl<R: RngCore> Rng for R {}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let u = f64::draw(rng);
        let v = lo + u * (hi - lo);
        // Guard against round-up to `hi` at the top of the interval.
        if v >= hi {
            lo.max(hi - (hi - lo) * f64::EPSILON)
        } else {
            v
        }
    }
}

macro_rules! impl_int_sample {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                // Multiply-shift rejection-free bounded draw (Lemire-style
                // without rejection; bias is negligible at these spans).
                let x = rng.next_u64() as u128;
                let r = (x * span) >> 64;
                (lo as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_sample!(usize, u64, u32, i64, i32);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic 64-bit generator: SplitMix64-seeded xoshiro256**.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1]
                .wrapping_mul(5)
                .rotate_left(7)
                .wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{RngCore, SampleUniform};

    /// Subset of `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = usize::sample_range(rng, 0, i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_unit_interval() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = r.gen_range(-3.0..5.0);
            assert!((-3.0..5.0).contains(&v));
            let n = r.gen_range(0usize..7);
            assert!(n < 7);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(1);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let trues = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&trues), "{trues}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
