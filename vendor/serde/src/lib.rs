//! Offline stand-in for `serde`.
//!
//! The workspace derives `Serialize`/`Deserialize` on its data types for
//! API fidelity with the paper artifact, but nothing in-tree performs
//! serde-based (de)serialization — persistent artifacts (trained weights,
//! cached campaign cells) use the explicit binary codecs in
//! `adas-core::cache` and `adas-ml::model`. This crate therefore only has
//! to provide the trait names and derive macros so the annotations compile
//! without network access to crates.io.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize`.
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Marker trait mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}
