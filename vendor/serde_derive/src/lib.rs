//! Derive macros for the offline `serde` stand-in.
//!
//! The real `serde_derive` generates full (de)serialization visitors; this
//! stand-in only needs to emit marker-trait impls so `#[derive(Serialize,
//! Deserialize)]` annotations across the workspace compile without network
//! access. It parses the item's name and generics directly from the token
//! stream (no `syn`/`quote` available offline).

use proc_macro::{TokenStream, TokenTree};

/// Name plus verbatim generic parameter/argument lists of the derive input.
struct Item {
    name: String,
    /// `<T: Bound, 'a, const N: usize>` — declaration form (may be empty).
    decl_generics: String,
    /// `<T, 'a, N>` — usage form (may be empty).
    use_generics: String,
}

/// Extracts the item name and generics from a `struct`/`enum`/`union`
/// definition token stream.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    // Skip attributes (`#[...]`) and visibility/qualifier keywords until the
    // `struct`/`enum`/`union` keyword.
    let mut name = None;
    while let Some(tok) = tokens.next() {
        if let TokenTree::Ident(id) = &tok {
            let s = id.to_string();
            if s == "struct" || s == "enum" || s == "union" {
                match tokens.next() {
                    Some(TokenTree::Ident(n)) => {
                        name = Some(n.to_string());
                        break;
                    }
                    other => panic!("derive: expected item name, got {other:?}"),
                }
            }
        }
    }
    let name = name.expect("derive input contains no struct/enum/union keyword");

    // Collect generics if the next token is `<` — accumulate verbatim until
    // the matching `>` at depth 0.
    let mut decl = String::new();
    let mut params: Vec<String> = Vec::new();
    if matches!(&tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        let _ = tokens.next();
        let mut depth = 1usize;
        let mut current = String::new();
        let mut in_bound = false;
        for tok in tokens.by_ref() {
            match &tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                TokenTree::Punct(p) if p.as_char() == ':' && depth == 1 => in_bound = true,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                    if !current.is_empty() {
                        params.push(current.clone());
                    }
                    current.clear();
                    in_bound = false;
                    decl.push(',');
                    continue;
                }
                _ => {}
            }
            if depth >= 1 {
                decl.push_str(&tok.to_string());
                decl.push(' ');
                if !in_bound && depth == 1 {
                    // Parameter names: idents / lifetimes before any `:`.
                    match &tok {
                        TokenTree::Ident(id) if id.to_string() != "const" => {
                            if !current.is_empty() {
                                current.push(' ');
                            }
                            current.push_str(&id.to_string());
                        }
                        TokenTree::Punct(p) if p.as_char() == '\'' => current.push('\''),
                        _ => {}
                    }
                }
            }
        }
        if !current.is_empty() {
            params.push(current);
        }
    }

    let (decl_generics, use_generics) = if decl.is_empty() {
        (String::new(), String::new())
    } else {
        (format!("<{decl}>"), format!("<{}>", params.join(",")))
    };
    Item {
        name,
        decl_generics,
        use_generics,
    }
}

/// Derives the `serde::Serialize` marker impl.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!(
        "impl {dg} serde::Serialize for {name} {ug} {{}}",
        dg = item.decl_generics,
        name = item.name,
        ug = item.use_generics,
    )
    .parse()
    .expect("generated Serialize impl must parse")
}

/// Derives the `serde::Deserialize` marker impl.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let dg = if item.decl_generics.is_empty() {
        "<'de>".to_owned()
    } else {
        format!("<'de, {}", &item.decl_generics[1..])
    };
    format!(
        "impl {dg} serde::Deserialize<'de> for {name} {ug} {{}}",
        name = item.name,
        ug = item.use_generics,
    )
    .parse()
    .expect("generated Deserialize impl must parse")
}
